//! Experiment harness: the shared driver behind the per-figure binaries.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results). The driver here streams
//! a dataset through every configured algorithm, issues queries at a
//! fixed cadence once the window has filled, and reports the paper's four
//! metrics:
//!
//! * **memory** — points stored by the algorithm (baselines store the
//!   whole window);
//! * **update time** — average per-arrival cost;
//! * **query time** — average per-query cost;
//! * **approximation ratio** — solution radius over the window divided by
//!   the best radius any sequential baseline found on the same window
//!   (the paper's definition).
//!
//! Every streaming lane is a [`WindowEngine`] driven exclusively through
//! the [`SlidingWindowClustering`] trait — the harness has no per-variant
//! code paths, so adding a lane is adding a [`VariantSpec`].
//!
//! Scales default to laptop-size and grow via environment variables
//! (`FAIRSW_STREAM`, `FAIRSW_WINDOW`, `FAIRSW_QUERIES`); shape, not
//! absolute numbers, is the reproduction target.

use fairsw_core::{FairSWConfig, SlidingWindowClustering, VariantSpec, WindowEngine};
use fairsw_datasets::Dataset;
use fairsw_metric::{sampled_extremes, Colored, EuclidPoint, Euclidean};
use fairsw_sequential::{ChenEtAl, FairCenterSolver, Instance, Jones};
use fairsw_stream::ExactWindow;
use std::time::{Duration, Instant};

/// Which algorithm a lane runs.
#[derive(Clone, Debug)]
pub enum AlgoSpec {
    /// The paper's main algorithm with the given `δ` (knows dmin/dmax).
    Ours {
        /// Coreset precision δ.
        delta: f64,
    },
    /// The aspect-ratio-oblivious variant with the given `δ`.
    OursOblivious {
        /// Coreset precision δ.
        delta: f64,
    },
    /// The Corollary 2 compact variant.
    Compact,
    /// The robust variant with the given outlier budget `z` (δ = 1).
    Robust {
        /// Tolerated outliers per window.
        z: usize,
    },
    /// Jones run on the full window at query time.
    BaselineJones,
    /// ChenEtAl run on the full window at query time (with a per-query
    /// time budget standing in for the paper's 24 h timeout).
    BaselineChen,
}

impl AlgoSpec {
    /// Display name, matching the paper's legend.
    pub fn name(&self) -> String {
        match self {
            AlgoSpec::Ours { delta } => format!("Ours(δ={delta})"),
            AlgoSpec::OursOblivious { delta } => format!("OursObl(δ={delta})"),
            AlgoSpec::Compact => "Compact".to_string(),
            AlgoSpec::Robust { z } => format!("Robust(z={z})"),
            AlgoSpec::BaselineJones => "Jones".to_string(),
            AlgoSpec::BaselineChen => "ChenEtAl".to_string(),
        }
    }

    /// Whether this lane is a full-window sequential baseline.
    pub fn is_baseline(&self) -> bool {
        matches!(self, AlgoSpec::BaselineJones | AlgoSpec::BaselineChen)
    }

    /// The engine spec of a streaming lane (`None` for baselines).
    /// `delta` rides in the shared config, so the spec only carries the
    /// variant selector and the scale bounds.
    fn variant(&self, dmin: f64, dmax: f64) -> Option<VariantSpec> {
        match self {
            AlgoSpec::Ours { .. } => Some(VariantSpec::Fixed { dmin, dmax }),
            AlgoSpec::OursOblivious { .. } => Some(VariantSpec::Oblivious),
            AlgoSpec::Compact => Some(VariantSpec::Compact { dmin, dmax }),
            AlgoSpec::Robust { z } => Some(VariantSpec::Robust { z: *z, dmin, dmax }),
            AlgoSpec::BaselineJones | AlgoSpec::BaselineChen => None,
        }
    }

    /// The coreset precision the lane's config should carry.
    fn delta(&self) -> f64 {
        match self {
            AlgoSpec::Ours { delta } | AlgoSpec::OursOblivious { delta } => *delta,
            _ => 1.0,
        }
    }
}

/// One lane's aggregated measurements.
#[derive(Clone, Debug)]
pub struct LaneResult {
    /// Algorithm display name.
    pub algo: String,
    /// Average stored points at query times.
    pub avg_memory: f64,
    /// Average per-arrival update time.
    pub avg_update: Duration,
    /// Average per-query time.
    pub avg_query: Duration,
    /// Average radius over the true window.
    pub avg_radius: f64,
    /// Average ratio to the best baseline radius per query
    /// (`NaN` when no baseline lane was configured).
    pub avg_ratio: f64,
    /// Completed queries (a lane that hits its time budget stops early).
    pub queries_done: usize,
    /// Whether the lane stopped answering queries due to the budget.
    pub timed_out: bool,
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct ExperimentParams {
    /// Window length `n`.
    pub window: usize,
    /// Number of queries (spread over the post-fill stream suffix).
    pub queries: usize,
    /// Per-query time budget for baselines (paper: 24 h; ours: seconds).
    pub query_budget: Duration,
    /// Guess parameter β (paper: 2).
    pub beta: f64,
    /// Total budget Σ k_i (paper: 14); split proportionally to color
    /// frequencies as in the paper.
    pub total_k: usize,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            window: env_usize("FAIRSW_WINDOW", 2_000),
            queries: env_usize("FAIRSW_QUERIES", 10),
            query_budget: Duration::from_secs(env_usize("FAIRSW_BUDGET_SECS", 30) as u64),
            beta: 2.0,
            total_k: 14,
        }
    }
}

/// Reads a usize from the environment with a default (harness scaling).
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Merges `section` — a JSON value, typically an object literal — into
/// the top-level JSON object stored at `path` under `key`, creating the
/// file as `{"key": section}` when it is missing and replacing any
/// existing entry of the same name. Lets independent bench binaries
/// (e.g. `serve_throughput` and `serve_concurrency`) share one results
/// file without clobbering each other's sections.
///
/// The scanner tracks strings, escapes and brace depth — enough to
/// split the well-formed JSON these binaries emit; it is not a general
/// JSON parser. A file whose top level is not an object is rewritten.
pub fn merge_json_section(path: &str, key: &str, section: &str) -> std::io::Result<()> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => split_top_level(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let section = section.trim().to_string();
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = section,
        None => entries.push((key.to_string(), section)),
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        out.push_str(&format!("\"{k}\": {v}"));
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Splits the top-level object of `text` into `(key, raw value)` pairs.
/// Returns an empty list when `text` holds no top-level object.
fn split_top_level(text: &str) -> Vec<(String, String)> {
    let Some(open) = text.find('{') else {
        return Vec::new();
    };
    let inner = &text[open + 1..];
    let (mut depth, mut in_string, mut escaped) = (0usize, false, false);
    let mut entries = Vec::new();
    let mut start = 0usize;
    let mut end = None;
    for (i, c) in inner.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' if depth > 0 => depth -= 1,
            ',' if depth == 0 => {
                entries.push(&inner[start..i]);
                start = i + 1;
            }
            '}' => {
                end = Some(i);
                break;
            }
            _ => {}
        }
    }
    if let Some(end) = end {
        entries.push(&inner[start..end]);
    }
    entries
        .into_iter()
        .filter_map(|entry| {
            let colon = top_level_colon(entry)?;
            let key = entry[..colon].trim();
            let key = key.strip_prefix('"')?.strip_suffix('"')?;
            Some((key.to_string(), entry[colon + 1..].trim().to_string()))
        })
        .collect()
}

/// Byte offset of the key/value colon of one top-level entry — the
/// first `:` outside the key string.
fn top_level_colon(entry: &str) -> Option<usize> {
    let (mut in_string, mut escaped) = (false, false);
    for (i, c) in entry.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            ':' => return Some(i),
            _ => {}
        }
    }
    None
}

/// A lane under measurement: a streaming engine, or a sequential
/// baseline answering from the shared exact window.
enum Lane {
    Engine(Box<WindowEngine<Euclidean>>),
    Baseline(&'static str),
}

struct LaneState {
    spec: AlgoSpec,
    lane: Lane,
    update_total: Duration,
    query_total: Duration,
    memory_total: f64,
    radius_total: f64,
    ratio_total: f64,
    queries_done: usize,
    timed_out: bool,
}

/// Runs one experiment: streams `dataset` through all `algos`, querying
/// `params.queries` times after the window fills. Returns one result per
/// lane, in the order given.
pub fn run_experiment(
    dataset: &Dataset,
    caps: &[usize],
    params: &ExperimentParams,
    algos: &[AlgoSpec],
) -> Vec<LaneResult> {
    let metric = Euclidean;
    let n = params.window;
    assert!(
        dataset.points.len() > n,
        "stream shorter than the window ({} <= {n})",
        dataset.points.len()
    );

    // Scale bounds for the non-oblivious lanes, estimated from the data
    // (the paper's Ours "has knowledge of dmin and dmax").
    let raw: Vec<EuclidPoint> = dataset.points.iter().map(|c| c.point.clone()).collect();
    let ext = sampled_extremes(&metric, &raw, 256).expect("non-degenerate dataset");

    let mut lanes: Vec<LaneState> = algos
        .iter()
        .map(|spec| {
            let lane = match spec {
                AlgoSpec::BaselineJones => Lane::Baseline("jones"),
                AlgoSpec::BaselineChen => Lane::Baseline("chen"),
                streaming => {
                    let variant = streaming
                        .variant(ext.dmin, ext.dmax)
                        .expect("non-baseline specs map to a VariantSpec");
                    let cfg = FairSWConfig::builder()
                        .window_size(n)
                        .capacities(caps.to_vec())
                        .beta(params.beta)
                        .delta(streaming.delta())
                        .build()
                        .expect("valid experiment config");
                    Lane::Engine(Box::new(
                        WindowEngine::build(cfg, variant, metric).expect("valid engine spec"),
                    ))
                }
            };
            LaneState {
                spec: spec.clone(),
                lane,
                update_total: Duration::ZERO,
                query_total: Duration::ZERO,
                memory_total: 0.0,
                radius_total: 0.0,
                ratio_total: 0.0,
                queries_done: 0,
                timed_out: false,
            }
        })
        .collect();

    // Query schedule: `queries` evenly spaced times in (n, stream_len].
    let len = dataset.points.len();
    let span = len - n;
    let stride = (span / params.queries.max(1)).max(1);
    let query_times: Vec<usize> = (1..=params.queries)
        .map(|i| n + i * stride)
        .filter(|&t| t <= len)
        .collect();

    let jones = Jones::new();
    let chen = ChenEtAl::new();
    let mut window = ExactWindow::new(n);
    let mut qi = 0usize;

    for (idx, p) in dataset.points.iter().enumerate() {
        let t = idx + 1;
        window.push(p.clone());
        for lane in &mut lanes {
            let start = Instant::now();
            match &mut lane.lane {
                Lane::Engine(e) => e.insert(p.clone()),
                Lane::Baseline(_) => {} // the shared ExactWindow is their store
            }
            lane.update_total += start.elapsed();
        }

        if qi < query_times.len() && t == query_times[qi] {
            qi += 1;
            run_queries(&mut lanes, &window, caps, params, &jones, &chen);
        }
    }

    let updates = len as f64;
    lanes
        .into_iter()
        .map(|l| {
            let q = l.queries_done.max(1) as f64;
            LaneResult {
                algo: l.spec.name(),
                avg_memory: l.memory_total / q,
                avg_update: l.update_total.div_f64(updates),
                avg_query: l.query_total.div_f64(q),
                avg_radius: l.radius_total / q,
                avg_ratio: l.ratio_total / q,
                queries_done: l.queries_done,
                timed_out: l.timed_out,
            }
        })
        .collect()
}

fn run_queries(
    lanes: &mut [LaneState],
    window: &ExactWindow<EuclidPoint>,
    caps: &[usize],
    params: &ExperimentParams,
    jones: &Jones,
    chen: &ChenEtAl,
) {
    let metric = Euclidean;
    let pts = window.to_vec();
    let inst = Instance::new(&metric, &pts, caps);

    // Radius of a center set over the true window.
    let radius_of = |centers: &[Colored<EuclidPoint>]| inst.radius_of(centers);

    let mut radii: Vec<Option<f64>> = Vec::with_capacity(lanes.len());
    let mut best_baseline = f64::INFINITY;

    for lane in lanes.iter_mut() {
        if lane.timed_out {
            radii.push(None);
            continue;
        }
        let start = Instant::now();
        let result: Option<Vec<Colored<EuclidPoint>>> = match &lane.lane {
            Lane::Engine(e) => e.query().ok().map(|s| s.centers),
            Lane::Baseline("jones") => jones.solve(&inst).ok().map(|s| s.centers),
            Lane::Baseline(_) => chen.solve(&inst).ok().map(|s| s.centers),
        };
        let elapsed = start.elapsed();
        if elapsed > params.query_budget {
            // Mirror the paper's 24 h cap: this lane stops answering.
            lane.timed_out = true;
        }
        match result {
            Some(centers) => {
                let r = radius_of(&centers);
                if lane.spec.is_baseline() && r < best_baseline {
                    best_baseline = r;
                }
                lane.query_total += elapsed;
                lane.queries_done += 1;
                lane.memory_total += match &lane.lane {
                    Lane::Engine(e) => e.stored_points() as f64,
                    Lane::Baseline(_) => window.len() as f64,
                };
                lane.radius_total += r;
                radii.push(Some(r));
            }
            None => radii.push(None),
        }
    }

    // Second pass: accumulate ratios against the best baseline radius.
    if best_baseline.is_finite() {
        for (lane, r) in lanes.iter_mut().zip(&radii) {
            if let Some(r) = r {
                lane.ratio_total += r / best_baseline;
            }
        }
    } else {
        // No baseline lane configured: ratio is meaningless; record 1.
        for (lane, r) in lanes.iter_mut().zip(&radii) {
            if r.is_some() {
                lane.ratio_total += 1.0;
            }
        }
    }
}

/// Prints a results table (one row per lane) with a caption.
pub fn print_table(caption: &str, extra_cols: &[(&str, &str)], results: &[LaneResult]) {
    println!("\n== {caption} ==");
    let extras: String = extra_cols
        .iter()
        .map(|(k, v)| format!("{k}={v} "))
        .collect();
    if !extras.is_empty() {
        println!("   {extras}");
    }
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "algo", "memory", "update", "query", "radius", "ratio", "queries"
    );
    for r in results {
        println!(
            "{:<18} {:>10.1} {:>12} {:>12} {:>10.4} {:>8.3} {:>7}{}",
            r.algo,
            r.avg_memory,
            fmt_duration(r.avg_update),
            fmt_duration(r.avg_query),
            r.avg_radius,
            r.avg_ratio,
            r.queries_done,
            if r.timed_out { " (timeout)" } else { "" },
        );
    }
}

/// Human-scale duration formatting (µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

/// The paper's δ sweep.
pub const DELTA_SWEEP: [f64; 8] = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];

/// Builds the three UCI stand-in datasets at a given stream length.
pub fn standard_datasets(stream_len: usize, seed: u64) -> Vec<Dataset> {
    vec![
        fairsw_datasets::phones_like(stream_len, seed),
        fairsw_datasets::higgs_like(stream_len, seed + 1),
        fairsw_datasets::covtype_like(stream_len, seed + 2),
    ]
}

/// The paper's capacity rule for a dataset: Σ k_i = total_k, proportional
/// to color frequencies.
pub fn caps_for(dataset: &Dataset, total_k: usize) -> Vec<usize> {
    let freq = fairsw_datasets::color_frequencies(&dataset.points, dataset.num_colors);
    fairsw_datasets::proportional_capacities(&freq, total_k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_json_section_roundtrips() {
        let path = std::env::temp_dir().join(format!("fairsw-merge-{}.json", std::process::id()));
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        // Creating from scratch yields a one-section object.
        merge_json_section(path, "alpha", "{\n  \"x\": 1,\n  \"s\": \"a,b:{c}\"\n}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"alpha\""), "{text}");

        // A second section lands beside the first.
        merge_json_section(path, "beta", "{\"lanes\": [1, 2, {\"n\": 3}]}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(
            text.contains("\"alpha\"") && text.contains("\"beta\""),
            "{text}"
        );
        assert!(
            text.contains("a,b:{c}"),
            "braces in strings survive: {text}"
        );

        // Re-merging a section replaces it without duplicating the key.
        merge_json_section(path, "alpha", "{\"x\": 2}").unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.matches("\"alpha\"").count(), 1, "{text}");
        assert!(
            text.contains("\"x\": 2") && !text.contains("\"x\": 1"),
            "{text}"
        );
        assert!(text.contains("\"beta\""), "other sections survive: {text}");

        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn driver_end_to_end_small() {
        let ds = fairsw_datasets::blobs(600, 2, fairsw_datasets::BlobsParams::default(), 3);
        let caps = caps_for(&ds, 14);
        let params = ExperimentParams {
            window: 200,
            queries: 3,
            query_budget: Duration::from_secs(10),
            beta: 2.0,
            total_k: 14,
        };
        let algos = [
            AlgoSpec::Ours { delta: 1.0 },
            AlgoSpec::OursOblivious { delta: 1.0 },
            AlgoSpec::Compact,
            AlgoSpec::BaselineJones,
        ];
        let res = run_experiment(&ds, &caps, &params, &algos);
        assert_eq!(res.len(), 4);
        for r in &res {
            assert_eq!(r.queries_done, 3, "{} missed queries", r.algo);
            assert!(r.avg_radius.is_finite() && r.avg_radius > 0.0);
            assert!(r.avg_ratio > 0.0);
        }
        // Sanity on memory accounting (the paper's memory *advantage*
        // needs realistic window sizes; see the integration tests and
        // the fig1/fig3 harness for that shape check).
        let jones_mem = res[3].avg_memory;
        assert!(
            (jones_mem - 200.0).abs() < 1.0,
            "baseline stores the window"
        );
        assert!(res[0].avg_memory > 0.0 && res[0].avg_memory.is_finite());
        // Quality within the theory bound (loose sanity band).
        assert!(res[0].avg_ratio < 4.0, "ratio {}", res[0].avg_ratio);
        assert!(res[1].avg_ratio < 4.0, "ratio {}", res[1].avg_ratio);
    }

    #[test]
    fn robust_lane_through_the_engine() {
        let ds = fairsw_datasets::blobs(500, 2, fairsw_datasets::BlobsParams::default(), 7);
        let caps = caps_for(&ds, 7);
        let params = ExperimentParams {
            window: 150,
            queries: 2,
            query_budget: Duration::from_secs(10),
            beta: 2.0,
            total_k: 7,
        };
        let res = run_experiment(
            &ds,
            &caps,
            &params,
            &[AlgoSpec::Robust { z: 2 }, AlgoSpec::BaselineJones],
        );
        assert_eq!(res[0].queries_done, 2);
        assert!(res[0].avg_radius.is_finite() && res[0].avg_radius > 0.0);
    }

    #[test]
    fn caps_rule_matches_paper() {
        let ds = fairsw_datasets::covtype_like(3000, 1);
        let caps = caps_for(&ds, 14);
        assert_eq!(caps.len(), 7);
        assert_eq!(caps.iter().sum::<usize>(), 14);
        assert!(caps.iter().all(|&c| c >= 1));
    }

    #[test]
    fn env_override_parses() {
        assert_eq!(env_usize("FAIRSW_DOES_NOT_EXIST_XYZ", 7), 7);
    }
}

//! Figure 3 — memory (top) and query time (bottom, log) versus the
//! window size, δ = 0.5 (the paper's most accurate / most expensive
//! setting).
//!
//! Paper shape to verify: baseline memory and query time grow linearly
//! with the window (ChenEtAl times out first, then Jones), while both of
//! ours flatten out to window-independent values.
//!
//! Window ladder defaults to 1k–16k; override the top with
//! `FAIRSW_MAX_WINDOW` (the paper reaches 500k on a 32-core server).

use fairsw_bench::{
    caps_for, env_usize, print_table, run_experiment, standard_datasets, AlgoSpec, ExperimentParams,
};
use std::time::Duration;

fn main() {
    let max_window = env_usize("FAIRSW_MAX_WINDOW", 16_000);
    let budget = Duration::from_secs(env_usize("FAIRSW_BUDGET_SECS", 20) as u64);
    let mut windows = vec![1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000];
    windows.retain(|&w| w <= max_window);

    println!("Figure 3: memory and query time vs window size (δ=0.5)");
    println!("windows={windows:?} per-query budget={budget:?}");

    let stream = windows.last().copied().unwrap_or(2_000) * 3;
    for ds in standard_datasets(stream, 0xF3) {
        let caps = caps_for(&ds, 14);
        for &window in &windows {
            let params = ExperimentParams {
                window,
                queries: 5,
                query_budget: budget,
                beta: 2.0,
                total_k: 14,
            };
            let res = run_experiment(
                &ds,
                &caps,
                &params,
                &[
                    AlgoSpec::Ours { delta: 0.5 },
                    AlgoSpec::OursOblivious { delta: 0.5 },
                    AlgoSpec::BaselineJones,
                    AlgoSpec::BaselineChen,
                ],
            );
            print_table(&format!("{} — window={window}", ds.name), &[], &res);
        }
    }
}

//! Parallel bench lane — sequential vs parallel per-guess execution.
//!
//! Streams one dataset through the fixed-lattice variant at several
//! thread counts and reports insert throughput (batched path, the one
//! the pool amortizes), per-query latency, and the speedup over the
//! sequential reference; then drives the five-variant fleet through
//! [`run_fleet`] and compares it against driving the engines one after
//! another. Results land in `BENCH_parallel.json` next to the working
//! directory so the speedup is machine-checkable.
//!
//! Everything is answer-checked: each lane's final solution must be
//! bit-identical to the sequential lane's (the equivalence guarantee the
//! differential suite enforces in miniature), so a lane that got faster
//! by being wrong fails loudly here too.
//!
//! Scaling knobs: `FAIRSW_STREAM`, `FAIRSW_WINDOW`, `FAIRSW_BATCH`,
//! `FAIRSW_BENCH_THREADS` (comma-separated counts, default `1,2,4`).

use fairsw_bench::{caps_for, env_usize, fmt_duration};
use fairsw_core::{
    run_fleet, EngineBuilder, ParallelismSpec, SlidingWindowClustering, Solution, WindowEngine,
};
use fairsw_metric::{sampled_extremes, EuclidPoint, Euclidean};
use std::io::Write as _;
use std::time::{Duration, Instant};

struct LaneReport {
    threads: usize,
    insert_total: Duration,
    points_per_sec: f64,
    avg_query: Duration,
    speedup: f64,
}

fn build_engine(
    caps: &[usize],
    window: usize,
    threads: usize,
    dmin: f64,
    dmax: f64,
) -> WindowEngine<Euclidean> {
    EngineBuilder::new()
        .window_size(window)
        .capacities(caps.to_vec())
        .beta(2.0)
        .delta(1.0)
        .fixed(dmin, dmax)
        .parallelism(ParallelismSpec::Threads(threads))
        .build(Euclidean)
        .expect("valid bench config")
}

fn assert_identical(a: &Solution<EuclidPoint>, b: &Solution<EuclidPoint>, threads: usize) {
    assert_eq!(
        a.guess.to_bits(),
        b.guess.to_bits(),
        "threads={threads}: winning guess diverged"
    );
    assert_eq!(
        a.coreset_radius.to_bits(),
        b.coreset_radius.to_bits(),
        "threads={threads}: radius diverged"
    );
    assert_eq!(
        a.centers.len(),
        b.centers.len(),
        "threads={threads}: center count diverged"
    );
}

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 1_000);
    let stream = env_usize("FAIRSW_STREAM", window * 8);
    let batch = env_usize("FAIRSW_BATCH", 256);
    let mut thread_counts: Vec<usize> = std::env::var("FAIRSW_BENCH_THREADS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    // speedup_vs_seq is defined against the sequential lane: make sure
    // it exists and runs first, whatever order the env var lists.
    thread_counts.retain(|&t| t > 1);
    thread_counts.insert(0, 1);

    let ds = fairsw_datasets::phones_like(stream, 0xFA12);
    let caps = caps_for(&ds, 14);
    let raw: Vec<EuclidPoint> = ds.points.iter().map(|c| c.point.clone()).collect();
    let ext = sampled_extremes(&Euclidean, &raw, 256).expect("non-degenerate dataset");

    println!("Parallel throughput: fixed variant, window={window} stream={stream} batch={batch}");
    println!(
        "thread counts: {thread_counts:?} (host cores: {})",
        host_cores()
    );

    let mut reports: Vec<LaneReport> = Vec::new();
    let mut reference: Option<Solution<EuclidPoint>> = None;
    let mut seq_throughput = 0.0_f64;

    for &threads in &thread_counts {
        let mut engine = build_engine(&caps, window, threads, ext.dmin, ext.dmax);
        let t0 = Instant::now();
        for chunk in ds.points.chunks(batch) {
            engine.insert_batch(chunk.iter().cloned());
        }
        let insert_total = t0.elapsed();

        let queries = 5;
        let q0 = Instant::now();
        let mut sol = None;
        for _ in 0..queries {
            sol = Some(engine.query().expect("bench query answers"));
        }
        let avg_query = q0.elapsed() / queries;
        let sol = sol.expect("at least one query ran");

        match &reference {
            None => {
                seq_throughput = stream as f64 / insert_total.as_secs_f64();
                reference = Some(sol);
            }
            Some(r) => assert_identical(r, &sol, threads),
        }

        let points_per_sec = stream as f64 / insert_total.as_secs_f64();
        reports.push(LaneReport {
            threads,
            insert_total,
            points_per_sec,
            avg_query,
            speedup: points_per_sec / seq_throughput,
        });
    }

    println!(
        "\n{:<8} {:>12} {:>14} {:>12} {:>8}",
        "threads", "insert", "points/s", "query", "speedup"
    );
    for r in &reports {
        println!(
            "{:<8} {:>12} {:>14.0} {:>12} {:>7.2}x",
            r.threads,
            fmt_duration(r.insert_total),
            r.points_per_sec,
            fmt_duration(r.avg_query),
            r.speedup
        );
    }

    // Fleet lane: five engines over the same stream, alone vs run_fleet.
    let fleet_spec = |threads: usize| -> Vec<WindowEngine<Euclidean>> {
        let base = || {
            EngineBuilder::new()
                .window_size(window)
                .capacities(caps.to_vec())
                .parallelism(ParallelismSpec::Threads(threads))
        };
        vec![
            base().fixed(ext.dmin, ext.dmax).build(Euclidean).unwrap(),
            base().oblivious().build(Euclidean).unwrap(),
            base().compact(ext.dmin, ext.dmax).build(Euclidean).unwrap(),
            base()
                .robust(2, ext.dmin, ext.dmax)
                .build(Euclidean)
                .unwrap(),
            base().fixed(ext.dmin, ext.dmax).build(Euclidean).unwrap(),
        ]
    };
    let t0 = Instant::now();
    let mut alone = fleet_spec(1);
    for e in &mut alone {
        e.insert_batch(ds.points.iter().cloned());
        let _ = e.query();
    }
    let alone_total = t0.elapsed();
    let t0 = Instant::now();
    let mut fleet = fleet_spec(1);
    let _ = run_fleet(&mut fleet, &ds.points);
    let fleet_total = t0.elapsed();
    let fleet_speedup = alone_total.as_secs_f64() / fleet_total.as_secs_f64();
    println!(
        "\nfleet of 5 engines: serial {} vs run_fleet {} ({fleet_speedup:.2}x)",
        fmt_duration(alone_total),
        fmt_duration(fleet_total)
    );

    // Machine-readable drop for the driver: BENCH_parallel.json.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"parallel_throughput\",\n  \"window\": {window},\n  \"stream\": {stream},\n  \"batch\": {batch},\n  \"host_cores\": {},\n  \"lanes\": [\n",
        host_cores()
    ));
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"insert_secs\": {:.6}, \"points_per_sec\": {:.1}, \"avg_query_us\": {:.1}, \"speedup_vs_seq\": {:.3}}}{}\n",
            r.threads,
            r.insert_total.as_secs_f64(),
            r.points_per_sec,
            r.avg_query.as_secs_f64() * 1e6,
            r.speedup,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"fleet\": {{\"engines\": 5, \"serial_secs\": {:.6}, \"run_fleet_secs\": {:.6}, \"speedup\": {:.3}}}\n}}\n",
        alone_total.as_secs_f64(),
        fleet_total.as_secs_f64(),
        fleet_speedup
    ));
    let path = "BENCH_parallel.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

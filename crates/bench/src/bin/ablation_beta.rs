//! Ablation A — sensitivity to the guess parameter β.
//!
//! The paper fixes β = 2 and reports that "varying this parameter does
//! not significantly influence the results". This ablation sweeps β and
//! reports quality/memory/time so that claim can be checked: smaller β
//! means more guesses (more memory, slower updates) and slightly finer
//! radius guesses (marginally better quality).

use fairsw_bench::{caps_for, env_usize, print_table, run_experiment, AlgoSpec, ExperimentParams};
use fairsw_datasets::phones_like;

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 2_000);
    let stream = env_usize("FAIRSW_STREAM", window * 4);
    let betas = [0.5f64, 1.0, 2.0, 4.0];

    println!("Ablation A: guess parameter β sweep (phones stand-in, δ=1)");
    println!("window={window} stream={stream}");

    let ds = phones_like(stream, 0xAB);
    let caps = caps_for(&ds, 14);
    for &beta in &betas {
        let params = ExperimentParams {
            window,
            beta,
            ..ExperimentParams::default()
        };
        let res = run_experiment(
            &ds,
            &caps,
            &params,
            &[
                AlgoSpec::Ours { delta: 1.0 },
                AlgoSpec::OursOblivious { delta: 1.0 },
                AlgoSpec::BaselineJones,
            ],
        );
        print_table(&format!("β = {beta}"), &[], &res);
    }
}

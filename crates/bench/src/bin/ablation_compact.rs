//! Ablation B — the Corollary 2 compact variant versus the main
//! algorithm at the δ extremes.
//!
//! The paper states that δ = 4 makes the coreset "comparable in size to
//! the validation set (i.e., the one yielding the result of
//! Corollary 2)". This ablation puts the explicit compact implementation
//! next to Ours(δ=4) and Ours(δ=0.5): memory of Compact ≈ Ours(δ=4) ≪
//! Ours(δ=0.5), with quality degrading in the same order.

use fairsw_bench::{caps_for, env_usize, print_table, run_experiment, AlgoSpec, ExperimentParams};
use fairsw_datasets::{covtype_like, higgs_like, phones_like};

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 2_000);
    let stream = env_usize("FAIRSW_STREAM", window * 4);

    println!("Ablation B: Compact (Corollary 2) vs coreset variants");
    println!("window={window} stream={stream}");

    let params = ExperimentParams {
        window,
        ..ExperimentParams::default()
    };

    for ds in [
        phones_like(stream, 0xAC),
        higgs_like(stream, 0xAD),
        covtype_like(stream, 0xAE),
    ] {
        let caps = caps_for(&ds, params.total_k);
        let res = run_experiment(
            &ds,
            &caps,
            &params,
            &[
                AlgoSpec::Ours { delta: 0.5 },
                AlgoSpec::Ours { delta: 4.0 },
                AlgoSpec::Compact,
                AlgoSpec::BaselineJones,
            ],
        );
        print_table(&ds.name, &[], &res);
    }
}

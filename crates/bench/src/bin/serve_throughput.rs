//! Serving-layer bench lane — end-to-end ingest throughput of
//! `fairsw-serve` across batch sizes and tenant counts.
//!
//! Boots an in-process server on an ephemeral port and sweeps:
//!
//! * **batch size** (1 / 64 / 1024) — how much wire overhead the
//!   per-tenant ingest buffers and `INSERT_BATCH` amortize away;
//! * **tenants** (1 / 4 / 16) — concurrent connections, hash-sharded
//!   across the server's shard threads.
//!
//! Every lane is **answer-checked**: after the ingest, each tenant's
//! `QUERY` reply must be byte-identical (the wire carries raw `f64`
//! bits) to an in-process sequential oracle engine fed the same stream
//! — exactly the `memory_footprint` discipline, so a lane that got
//! faster by dropping or reordering points fails loudly.
//!
//! Results land in the `serve_throughput` section of
//! `BENCH_serve.json` (beside `serve_concurrency`'s connection sweep),
//! including `host_cores` so multicore readers can judge the
//! thread-scaling headroom. Scaling knobs: `FAIRSW_STREAM` (points per
//! tenant), `FAIRSW_WINDOW`, `FAIRSW_SERVE_SHARDS`.

use fairsw_bench::{env_usize, fmt_duration, merge_json_section};
use fairsw_core::{ParallelismSpec, SlidingWindowClustering};
use fairsw_serve::loadgen::{burst_config, workload, Client};
use fairsw_serve::protocol::Reply;
use fairsw_serve::server::{ServeConfig, Server};
use std::time::{Duration, Instant};

struct LaneReport {
    tenants: usize,
    batch: usize,
    points_total: u64,
    elapsed: Duration,
    points_per_sec: f64,
    overloaded_retries: u64,
}

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 1_000);
    let points = env_usize("FAIRSW_STREAM", window * 4);
    let shards = env_usize("FAIRSW_SERVE_SHARDS", 2);
    let batches = [1usize, 64, 1024];
    let tenant_counts = [1usize, 4, 16];

    println!(
        "Serve throughput: window={window} points/tenant={points} shards={shards} \
         (host cores: {})",
        host_cores()
    );
    println!(
        "{:>8} {:>7} {:>12} {:>10} {:>14} {:>9}",
        "tenants", "batch", "points", "elapsed", "points/s", "retries"
    );

    let mut reports: Vec<LaneReport> = Vec::new();
    for &tenants in &tenant_counts {
        for &batch in &batches {
            // Fresh server per lane so lanes do not warm each other.
            let cfg = ServeConfig {
                shards,
                ..ServeConfig::default()
            };
            let handle = Server::start("127.0.0.1:0", cfg).expect("server starts");
            let addr = handle.local_addr();

            let t0 = Instant::now();
            let retries: u64 = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..tenants)
                    .map(|i| {
                        scope.spawn(move || {
                            let tenant = format!("lane-{i}");
                            let mut c = Client::connect(addr).expect("connect");
                            match c.create(&tenant, &burst_config(window)).expect("create") {
                                Reply::Ok => {}
                                other => panic!("{tenant}: create failed: {other:?}"),
                            }
                            let stream = workload(points, i as u64 * 7919);
                            let mut retries = 0;
                            for chunk in stream.chunks(batch) {
                                retries += c
                                    .insert_batch_backoff(&tenant, chunk)
                                    .expect("ingest accepted");
                            }
                            retries
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("lane worker"))
                    .sum()
            });
            let elapsed = t0.elapsed();

            // Answer check: every tenant's reply must be byte-identical
            // to a sequential oracle over the same stream.
            let mut checker = Client::connect(addr).expect("connect checker");
            for i in 0..tenants {
                let tenant = format!("lane-{i}");
                let mut oracle = burst_config(window)
                    .build_engine()
                    .expect("oracle config")
                    .with_parallelism(ParallelismSpec::Sequential);
                for p in workload(points, i as u64 * 7919) {
                    oracle.insert(p);
                }
                let got = checker.query(&tenant).expect("query reply");
                let want = Reply::from_query(&oracle.query());
                assert_eq!(
                    got.encode().unwrap(),
                    want.encode().unwrap(),
                    "lane tenants={tenants} batch={batch}: tenant {i} diverged from oracle"
                );
            }
            handle.shutdown();

            let points_total = (tenants * points) as u64;
            let points_per_sec = points_total as f64 / elapsed.as_secs_f64().max(1e-9);
            println!(
                "{:>8} {:>7} {:>12} {:>10} {:>14.0} {:>9}",
                tenants,
                batch,
                points_total,
                fmt_duration(elapsed),
                points_per_sec,
                retries
            );
            reports.push(LaneReport {
                tenants,
                batch,
                points_total,
                elapsed,
                points_per_sec,
                overloaded_retries: retries,
            });
        }
    }

    // Batching headroom: within each tenant count, the biggest batch
    // should beat per-point framing.
    for &tenants in &tenant_counts {
        let of = |b: usize| {
            reports
                .iter()
                .find(|r| r.tenants == tenants && r.batch == b)
                .map(|r| r.points_per_sec)
                .unwrap_or(0.0)
        };
        println!(
            "tenants={tenants}: batch-1024 over batch-1 amortization {:.2}x",
            of(1024) / of(1).max(1e-9)
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"window\": {window},\n  \"points_per_tenant\": {points},\n  \"shards\": {shards},\n  \"host_cores\": {},\n  \"answer_checked\": true,\n  \"lanes\": [\n",
        host_cores()
    ));
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tenants\": {}, \"batch\": {}, \"points\": {}, \"elapsed_secs\": {:.6}, \"points_per_sec\": {:.1}, \"overloaded_retries\": {}}}{}\n",
            r.tenants,
            r.batch,
            r.points_total,
            r.elapsed.as_secs_f64(),
            r.points_per_sec,
            r.overloaded_retries,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}");
    let path = "BENCH_serve.json";
    match merge_json_section(path, "serve_throughput", &json) {
        Ok(()) => println!("wrote the serve_throughput section of {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

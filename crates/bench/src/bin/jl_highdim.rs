//! JL-projection bench lane — wide-dim embedding streams, raw vs
//! projected, answer-checked in the *original* space.
//!
//! For each raw dimension in {256, 1024} the lane streams the synthetic
//! embedding-drift workload into a fixed-lattice engine twice: once raw,
//! once through `EngineBuilder::project` at each projected dimension in
//! {32, 64, 128}. Repeated queries are timed (best of three rounds) on
//! both, and quality is **answer-checked where it counts**: every
//! projected center is mapped back to its raw preimage (bit-exact match
//! of its projected coordinates against the projected stream — a center
//! that is not a real projected stream point fails loudly), then the
//! true coverage radius of both solutions is evaluated over the raw
//! window points with raw-dimension distances. The quality figure is
//! `projected-centers radius / raw-centers radius` in that original
//! space, not a comparison of two incommensurate coreset bounds.
//!
//! Results land in `BENCH_jl.json` (section `jl_highdim` via
//! [`merge_json_section`]). Outside smoke mode the 1024→64 lane gates:
//! projected queries ≥ 3× faster than raw, radius ratio ≤ 1.25.
//!
//! `FAIRSW_BENCH_SMOKE=1` shrinks everything for a CI bitrot check
//! (timing and ratio informational, the preimage answer-check still
//! binds). Scaling knobs: `FAIRSW_WINDOW`, `FAIRSW_STREAM`,
//! `FAIRSW_QUERY_REPS`.

use fairsw_bench::{caps_for, env_usize, fmt_duration, merge_json_section};
use fairsw_core::{EngineBuilder, SlidingWindowClustering, WindowEngine};
use fairsw_datasets::{embedding_drift, Dataset, EmbeddingDriftParams};
use fairsw_metric::{
    active_isa, sampled_extremes, Colored, EuclidPoint, Euclidean, Metric, Projector,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Seed of every projection in the sweep (the matrix rematerializes
/// from it; see `fairsw_metric::project`).
const SEED: u64 = 0xfa15_c0de;

/// One timed lane: a raw baseline (`proj_dim == None`) or a projected
/// run, plus its raw-space quality relative to the baseline.
struct Lane {
    raw_dim: usize,
    proj_dim: Option<usize>,
    query: Duration,
    /// True coverage radius of the lane's centers over the raw window.
    radius: f64,
    /// `radius / baseline radius` (1.0 for the baseline itself).
    ratio: f64,
    /// `baseline query time / this lane's query time`.
    speedup: f64,
}

/// Streams `ds` (all but the last `reps` points) into a fixed-lattice
/// engine (projected when `proj_dim` is set), then measures `reps`
/// *cold* queries: each one is preceded by a single-point insert so the
/// window version moves and the engine's query memo cannot answer from
/// cache — only the `query()` calls themselves are timed. Returns the
/// summed query time and the final solution.
fn run_lane(
    ds: &Dataset,
    caps: &[usize],
    window: usize,
    proj_dim: Option<usize>,
    sparse: bool,
    reps: usize,
) -> (Duration, fairsw_core::Solution<EuclidPoint>) {
    // Scale estimation must happen in the space the engine clusters in.
    let raw: Vec<EuclidPoint> = match proj_dim {
        Some(out_dim) => {
            let projector = if sparse {
                Projector::sparse(ds.points[0].point.dim(), out_dim, SEED)
            } else {
                Projector::dense(ds.points[0].point.dim(), out_dim, SEED)
            };
            ds.points
                .iter()
                .map(|p| projector.project_point(&p.point))
                .collect()
        }
        None => ds.points.iter().map(|p| p.point.clone()).collect(),
    };
    let ext = sampled_extremes(&Euclidean, &raw, 256).expect("non-degenerate dataset");
    let builder = EngineBuilder::new()
        .window_size(window)
        .capacities(caps.to_vec())
        .beta(2.0)
        .delta(0.5)
        .fixed(ext.dmin, ext.dmax);
    let builder = match (proj_dim, sparse) {
        (Some(d), false) => builder.project(d, SEED),
        (Some(d), true) => builder.project_sparse(d, SEED),
        (None, _) => builder,
    };
    let mut engine: WindowEngine<Euclidean> = builder.build(Euclidean).expect("valid bench config");
    let reps = reps.max(1).min(ds.points.len() - 1);
    let (warmup, probes) = ds.points.split_at(ds.points.len() - reps);
    for chunk in warmup.chunks(512) {
        engine.insert_batch(chunk.iter().cloned());
    }
    let mut total = Duration::ZERO;
    let mut sol = engine.query().expect("bench query answers");
    for p in probes {
        engine.insert(p.clone());
        let t0 = Instant::now();
        sol = engine.query().expect("bench query answers");
        total += t0.elapsed();
    }
    (total, sol)
}

/// Bit-exact key of a point's coordinates (projection is deterministic,
/// so a projected center matches its stream preimage to the bit).
fn bits(p: &EuclidPoint) -> Vec<u64> {
    p.coords().iter().map(|c| c.to_bits()).collect()
}

/// Maps each center back to a raw-space point. Raw-lane centers are raw
/// stream points already; projected centers are looked up by the bits
/// of their projected coordinates — the answer check that the solution
/// is made of real (projected) stream points.
fn raw_centers(
    centers: &[Colored<EuclidPoint>],
    ds: &Dataset,
    proj: Option<&Projector>,
) -> Vec<EuclidPoint> {
    match proj {
        None => centers.iter().map(|c| c.point.clone()).collect(),
        Some(projector) => {
            let mut preimage: HashMap<Vec<u64>, &EuclidPoint> = HashMap::new();
            for p in &ds.points {
                preimage
                    .entry(bits(&projector.project_point(&p.point)))
                    .or_insert(&p.point);
            }
            centers
                .iter()
                .map(|c| {
                    (*preimage
                        .get(&bits(&c.point))
                        .expect("projected center has no stream preimage"))
                    .clone()
                })
                .collect()
        }
    }
}

/// True coverage radius of `centers` over the last `window` raw points:
/// max over window points of the distance to the nearest center.
fn coverage_radius(ds: &Dataset, window: usize, centers: &[EuclidPoint]) -> f64 {
    let tail = &ds.points[ds.points.len().saturating_sub(window)..];
    tail.iter()
        .map(|p| {
            centers
                .iter()
                .map(|c| Euclidean.dist(&p.point, c))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max)
}

fn main() {
    let smoke = std::env::var("FAIRSW_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let window = env_usize("FAIRSW_WINDOW", if smoke { 200 } else { 1_500 });
    let stream = env_usize("FAIRSW_STREAM", window * 2);
    let reps = env_usize("FAIRSW_QUERY_REPS", if smoke { 2 } else { 12 });
    let raw_dims: &[usize] = if smoke { &[256] } else { &[256, 1024] };
    let proj_dims: &[usize] = if smoke { &[32] } else { &[32, 64, 128] };

    println!("JL projection: raw vs projected queries over embedding streams");
    println!(
        "window={window} stream={stream} reps={reps} smoke={smoke} isa={}",
        active_isa().name()
    );
    println!(
        "\n{:<10} {:>6} {:>12} {:>9} {:>12} {:>9}",
        "lane", "dim", "query", "speedup", "radius", "ratio"
    );

    let mut lanes: Vec<Lane> = Vec::new();
    for &raw_dim in raw_dims {
        // `reps` extra points: one consumed before each timed cold query.
        let ds = embedding_drift(
            stream + reps,
            raw_dim,
            EmbeddingDriftParams::default(),
            0xed8e ^ raw_dim as u64,
        );
        let caps = caps_for(&ds, 14);

        let (t_raw, sol_raw) = run_lane(&ds, &caps, window, None, false, reps);
        let base_centers = raw_centers(&sol_raw.centers, &ds, None);
        let base_radius = coverage_radius(&ds, window, &base_centers);
        println!(
            "{:<10} {:>6} {:>12} {:>8.2}x {:>12.4} {:>9.3}",
            "raw",
            raw_dim,
            fmt_duration(t_raw / reps.max(1) as u32),
            1.0,
            base_radius,
            1.0
        );
        lanes.push(Lane {
            raw_dim,
            proj_dim: None,
            query: t_raw,
            radius: base_radius,
            ratio: 1.0,
            speedup: 1.0,
        });

        for &proj_dim in proj_dims {
            let (t_proj, sol_proj) = run_lane(&ds, &caps, window, Some(proj_dim), false, reps);
            let projector = Projector::dense(raw_dim, proj_dim, SEED);
            let centers = raw_centers(&sol_proj.centers, &ds, Some(&projector));
            let radius = coverage_radius(&ds, window, &centers);
            let ratio = radius / base_radius.max(1e-12);
            let speedup = t_raw.as_secs_f64() / t_proj.as_secs_f64().max(1e-12);
            println!(
                "{:<10} {:>6} {:>12} {:>8.2}x {:>12.4} {:>9.3}",
                format!("proj-{proj_dim}"),
                raw_dim,
                fmt_duration(t_proj / reps.max(1) as u32),
                speedup,
                radius,
                ratio
            );
            lanes.push(Lane {
                raw_dim,
                proj_dim: Some(proj_dim),
                query: t_proj,
                radius,
                ratio,
                speedup,
            });
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"jl_highdim\",\n  \"window\": {window},\n  \"stream\": {stream},\n  \"query_reps\": {reps},\n  \"smoke\": {smoke},\n  \"isa\": \"{}\",\n  \"speedup_target\": 3.0,\n  \"radius_ratio_limit\": 1.25,\n  \"lanes\": [\n",
        active_isa().name()
    ));
    for (i, l) in lanes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"raw_dim\": {}, \"proj_dim\": {}, \"query_ns\": {}, \"radius\": {:.6}, \"radius_ratio\": {:.4}, \"speedup\": {:.3}}}{}\n",
            l.raw_dim,
            l.proj_dim.map_or("null".to_string(), |d| d.to_string()),
            l.query.as_nanos(),
            l.radius,
            l.ratio,
            l.speedup,
            if i + 1 < lanes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}");
    let path = "BENCH_jl.json";
    match merge_json_section(path, "jl_highdim", &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // The acceptance gate: at 1024→64 the projected queries must be at
    // least 3x cheaper while the raw-space radius stays within 1.25x.
    if !smoke {
        let gate = lanes
            .iter()
            .find(|l| l.raw_dim == 1024 && l.proj_dim == Some(64))
            .expect("1024->64 lane present outside smoke");
        let mut failed = false;
        if gate.speedup < 3.0 {
            eprintln!(
                "1024->64 query speedup {:.2}x below the 3x target",
                gate.speedup
            );
            failed = true;
        }
        if gate.ratio > 1.25 {
            eprintln!(
                "1024->64 radius ratio {:.3} above the 1.25 limit",
                gate.ratio
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}

//! Memory-footprint bench lane — resident point copies before/after the
//! interned `PointStore` arena.
//!
//! Streams the fig1 workload (the three UCI stand-ins, fig1 window and
//! capacity rule) through every sliding-window variant at two precision
//! settings and records, per lane:
//!
//! * **entries** — stored handle entries across all guess families (the
//!   paper's memory metric). Before the arena refactor every entry was
//!   an owned point copy, so this is also the *pre-refactor* resident
//!   copy count;
//! * **payloads** — distinct live points in the arena (the *post-
//!   refactor* resident copy count), plus their bytes;
//! * **copy_reduction** — entries ÷ payloads, the factor the arena
//!   shaves off resident point copies;
//! * **byte_reduction** — per-entry-copy bytes ÷ (handle + payload)
//!   bytes, the end-to-end resident-byte win.
//!
//! Two precision configs run: the fig1 default (`β = 2, δ = 1`) and the
//! accuracy-oriented fine lattice (`β = 0.25, δ = 0.5`, both inside the
//! paper's ablation sweeps). The copy reduction grows with the guess
//! count — a point resident in `g` guesses used to cost `g+` copies and
//! now costs one — so the fine lattice is where the arena pays off most;
//! the driver-checked `≥ 5×` target is evaluated there
//! (`min_fixed_copy_reduction` in the JSON).
//!
//! Every lane is answer-checked: a second engine drives the same stream
//! through the batched path and must produce a bit-identical solution,
//! so the memory win demonstrably does not change query results. Results
//! land in `BENCH_memory.json`.
//!
//! Scaling knobs: `FAIRSW_STREAM`, `FAIRSW_WINDOW` (fig1 default 2 000).

use fairsw_bench::{caps_for, env_usize, standard_datasets};
use fairsw_core::{
    EngineBuilder, SlidingWindowClustering, Solution, VariantSpec, WindowEngine, HANDLE_ENTRY_BYTES,
};
use fairsw_matroid::PartitionMatroid;
use fairsw_metric::{
    sampled_extremes, CompactEuclidean, CompactPoint, EuclidPoint, Euclidean, Metric,
    PointFootprint, Q8Euclidean, Q8Point,
};
use std::io::Write as _;

struct MirrorLane {
    dataset: String,
    repr: &'static str,
    payload_bytes: usize,
    exact_payload_bytes: usize,
    payload_reduction: f64,
    centers_match: bool,
    /// The per-representation answer contract: `f32` stores every
    /// coordinate exactly rounded, so its lane must select the *same
    /// points* as the exact lane; `q8` trades real quantization error
    /// for 8× compression, so its contract is the `(1+ε)` radius
    /// envelope over the re-ranked answer.
    contract_ok: bool,
    radius: f64,
    exact_radius: f64,
}

/// Streams `points` (converted through `conv`) into a fixed-variant
/// engine over a compact payload mirror and compares it against the
/// exact-mode lane: payload bytes shrink, and the chosen centers must be
/// the same points (the mirrors store rounded coordinates, so centers
/// are compared after applying the same rounding to the exact lane's).
#[allow(clippy::too_many_arguments)]
fn mirror_lane<M>(
    metric: M,
    repr: &'static str,
    ds_name: &str,
    points: &[fairsw_metric::Colored<EuclidPoint>],
    conv: impl Fn(&EuclidPoint) -> M::Point,
    widen: impl Fn(&M::Point) -> EuclidPoint,
    caps: &[usize],
    window: usize,
    dmin: f64,
    dmax: f64,
    exact: &(Solution<EuclidPoint>, usize),
) -> MirrorLane
where
    M: Metric + Sync,
    M::Point: PointFootprint + fairsw_metric::Projectable + Send + Sync,
{
    let mut engine = EngineBuilder::new()
        .window_size(window)
        .capacities(caps.to_vec())
        .fixed(dmin, dmax)
        .build(metric)
        .unwrap();
    for p in points {
        engine.insert(p.clone().map(|q| conv(&q)));
    }
    let sol = engine.query().expect("mirror lane answers");
    let stats = engine.memory_stats();
    let (exact_sol, exact_payload_bytes) = exact;
    let centers_match = sol.centers.len() == exact_sol.centers.len()
        && sol
            .centers
            .iter()
            .zip(&exact_sol.centers)
            .all(|(a, b)| a.color == b.color && widen(&a.point) == widen(&conv(&b.point)));
    // ε = 0.05 comfortably covers f32 rounding and the 8-bit step/2
    // per-coordinate error on the fig1 scales.
    let envelope_ok = sol.coreset_radius <= exact_sol.coreset_radius * 1.05
        && sol.coreset_radius >= exact_sol.coreset_radius / 1.05;
    let contract_ok = if repr == "f32" {
        centers_match
    } else {
        envelope_ok
    };
    MirrorLane {
        dataset: ds_name.to_string(),
        repr,
        payload_bytes: stats.payload_bytes,
        exact_payload_bytes: *exact_payload_bytes,
        payload_reduction: *exact_payload_bytes as f64 / stats.payload_bytes.max(1) as f64,
        centers_match,
        contract_ok,
        radius: sol.coreset_radius,
        exact_radius: exact_sol.coreset_radius,
    }
}

struct LaneReport {
    config: &'static str,
    dataset: String,
    variant: &'static str,
    entries: usize,
    payloads: usize,
    payload_bytes: usize,
    handle_bytes: usize,
    copy_reduction: f64,
    byte_reduction: f64,
    guess: f64,
    coreset_radius: f64,
}

#[allow(clippy::too_many_arguments)]
fn build_variants(
    caps: &[usize],
    window: usize,
    beta: f64,
    delta: f64,
    dmin: f64,
    dmax: f64,
) -> Vec<(&'static str, WindowEngine<Euclidean>)> {
    let base = || {
        EngineBuilder::new()
            .window_size(window)
            .capacities(caps.to_vec())
            .beta(beta)
            .delta(delta)
    };
    vec![
        ("fixed", base().fixed(dmin, dmax).build(Euclidean).unwrap()),
        ("oblivious", base().oblivious().build(Euclidean).unwrap()),
        (
            "compact",
            base().compact(dmin, dmax).build(Euclidean).unwrap(),
        ),
        (
            "robust",
            base().robust(2, dmin, dmax).build(Euclidean).unwrap(),
        ),
        (
            "matroid",
            base()
                .variant(VariantSpec::Matroid {
                    matroid: PartitionMatroid::new(caps.to_vec()).unwrap().into(),
                    dmin,
                    dmax,
                })
                .build(Euclidean)
                .unwrap(),
        ),
    ]
}

fn assert_identical(name: &str, a: &Solution<EuclidPoint>, b: &Solution<EuclidPoint>) {
    assert_eq!(
        a.guess.to_bits(),
        b.guess.to_bits(),
        "{name}: guess diverged"
    );
    assert_eq!(
        a.coreset_radius.to_bits(),
        b.coreset_radius.to_bits(),
        "{name}: radius diverged"
    );
    assert_eq!(a.centers.len(), b.centers.len(), "{name}: centers diverged");
    for (i, (x, y)) in a.centers.iter().zip(&b.centers).enumerate() {
        assert_eq!(x.color, y.color, "{name}: center[{i}] color diverged");
        assert_eq!(
            x.point.coords(),
            y.point.coords(),
            "{name}: center[{i}] coordinates diverged"
        );
    }
}

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 2_000);
    let stream = env_usize("FAIRSW_STREAM", window * 4);
    let configs: [(&'static str, f64, f64); 2] =
        [("fig1-default", 2.0, 1.0), ("fine-lattice", 0.25, 0.5)];

    println!("Memory footprint: resident point copies, window={window} stream={stream}");
    println!(
        "{:<13} {:<9} {:<10} {:>8} {:>9} {:>12} {:>12} {:>8} {:>8}",
        "config",
        "dataset",
        "variant",
        "entries",
        "payloads",
        "payload_B",
        "handle_B",
        "copies÷",
        "bytes÷"
    );

    let mut reports: Vec<LaneReport> = Vec::new();
    let mut mirrors: Vec<MirrorLane> = Vec::new();
    for ds in standard_datasets(stream, 0xF1) {
        let caps = caps_for(&ds, 14);
        let raw: Vec<EuclidPoint> = ds.points.iter().map(|c| c.point.clone()).collect();
        let ext = sampled_extremes(&Euclidean, &raw, 256).expect("non-degenerate dataset");
        let per_point = ds.points[0].point.payload_bytes();

        let mut exact_fixed: Option<(Solution<EuclidPoint>, usize)> = None;
        for (config, beta, delta) in configs {
            let mut engines = build_variants(&caps, window, beta, delta, ext.dmin, ext.dmax);
            let mut checkers = build_variants(&caps, window, beta, delta, ext.dmin, ext.dmax);
            for (_, e) in &mut engines {
                for p in &ds.points {
                    e.insert(p.clone());
                }
            }
            for (_, c) in &mut checkers {
                for chunk in ds.points.chunks(256) {
                    c.insert_batch(chunk.iter().cloned());
                }
            }

            for ((name, e), (_, c)) in engines.iter().zip(&checkers) {
                // The memory win must not change answers: per-point and
                // batched drives of the same stream agree to the bit.
                let sol = e.query().expect("bench query answers");
                assert_identical(name, &sol, &c.query().expect("checker answers"));

                let stats = e.memory_stats();
                if config == "fig1-default" && *name == "fixed" {
                    exact_fixed = Some((sol.clone(), stats.payload_bytes));
                }
                let entries = stats.stored_points();
                let payloads = stats.unique_points.max(1);
                let copy_reduction = entries as f64 / payloads as f64;
                // Pre-refactor, every entry held an owned payload copy.
                let pre_bytes = (entries * per_point) as f64;
                let byte_reduction = pre_bytes / stats.resident_bytes().max(1) as f64;
                println!(
                    "{:<13} {:<9} {:<10} {:>8} {:>9} {:>12} {:>12} {:>8.2} {:>8.2}",
                    config,
                    ds.name,
                    name,
                    entries,
                    stats.unique_points,
                    stats.payload_bytes,
                    stats.handle_bytes(),
                    copy_reduction,
                    byte_reduction
                );
                reports.push(LaneReport {
                    config,
                    dataset: ds.name.clone(),
                    variant: name,
                    entries,
                    payloads: stats.unique_points,
                    payload_bytes: stats.payload_bytes,
                    handle_bytes: stats.handle_bytes(),
                    copy_reduction,
                    byte_reduction,
                    guess: sol.guess,
                    coreset_radius: sol.coreset_radius,
                });
            }
        }

        // Compact payload mirrors: the same fig1-default fixed-variant
        // stream over `f32` and 8-bit quantized point storage. Payload
        // bytes shrink ~2×/~8× while the selected centers stay the same
        // points as the exact lane's.
        let exact = exact_fixed.expect("fixed fig1-default lane ran");
        for m in [
            mirror_lane(
                CompactEuclidean,
                "f32",
                &ds.name,
                &ds.points,
                |p| CompactPoint::from(p),
                CompactPoint::widen,
                &caps,
                window,
                ext.dmin,
                ext.dmax,
                &exact,
            ),
            mirror_lane(
                Q8Euclidean,
                "q8",
                &ds.name,
                &ds.points,
                |p| Q8Point::from(p),
                Q8Point::widen,
                &caps,
                window,
                ext.dmin,
                ext.dmax,
                &exact,
            ),
        ] {
            println!(
                "mirror        {:<9} {:<10} payload_B {:>10} vs exact {:>10} -> {:>5.2}x  centers_match={} contract_ok={} radius {:.4} (exact {:.4})",
                m.dataset,
                m.repr,
                m.payload_bytes,
                m.exact_payload_bytes,
                m.payload_reduction,
                m.centers_match,
                m.contract_ok,
                m.radius,
                m.exact_radius
            );
            mirrors.push(m);
        }
    }

    // Driver-checked target: on the fine lattice (where a point is
    // resident in many guesses) the main algorithm must shed ≥ 5× of its
    // resident point copies across every fig1 dataset.
    let min_reduction = reports
        .iter()
        .filter(|r| r.variant == "fixed" && r.config == "fine-lattice")
        .map(|r| r.copy_reduction)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nfixed-variant copy reduction, fine lattice, fig1 datasets: min {min_reduction:.2}x (target >= 5x)"
    );

    // Driver-checked target: on each wide fig1 dataset (covtype,
    // higgs) some compact mirror that honors its answer contract must
    // shed ≥ 1.8× of resident payload bytes. On covtype (54-d) the f32
    // mirror alone clears it; on the narrower higgs the `Arc` header
    // dominates, so the q8 mirror carries the reduction.
    let min_mirror = ["covtype", "higgs"]
        .iter()
        .map(|ds| {
            mirrors
                .iter()
                .filter(|m| m.dataset == *ds && m.contract_ok)
                .map(|m| m.payload_reduction)
                .fold(0.0f64, f64::max)
        })
        .fold(f64::INFINITY, f64::min);
    let mirrors_ok = mirrors.iter().all(|m| m.contract_ok);
    println!(
        "compact mirror payload reduction, covtype/higgs: min {min_mirror:.2}x (target >= 1.8x); contracts hold: {mirrors_ok}"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"memory_footprint\",\n  \"window\": {window},\n  \"stream\": {stream},\n  \"handle_entry_bytes\": {HANDLE_ENTRY_BYTES},\n  \"min_fixed_copy_reduction\": {min_reduction:.3},\n  \"min_mirror_payload_reduction\": {min_mirror:.3},\n  \"mirror_payload_reduction_target\": 1.8,\n  \"mirror_contracts_ok\": {mirrors_ok},\n  \"lanes\": [\n"
    ));
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"dataset\": \"{}\", \"variant\": \"{}\", \"entries\": {}, \"payloads\": {}, \"payload_bytes\": {}, \"handle_bytes\": {}, \"copy_reduction\": {:.3}, \"byte_reduction\": {:.3}, \"guess\": {:.6}, \"coreset_radius\": {:.6}}}{}\n",
            r.config,
            r.dataset,
            r.variant,
            r.entries,
            r.payloads,
            r.payload_bytes,
            r.handle_bytes,
            r.copy_reduction,
            r.byte_reduction,
            r.guess,
            r.coreset_radius,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"mirror_lanes\": [\n");
    for (i, m) in mirrors.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"repr\": \"{}\", \"payload_bytes\": {}, \"exact_payload_bytes\": {}, \"payload_reduction\": {:.3}, \"centers_match\": {}, \"contract_ok\": {}, \"coreset_radius\": {:.6}, \"exact_coreset_radius\": {:.6}}}{}\n",
            m.dataset,
            m.repr,
            m.payload_bytes,
            m.exact_payload_bytes,
            m.payload_reduction,
            m.centers_match,
            m.contract_ok,
            m.radius,
            m.exact_radius,
            if i + 1 < mirrors.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_memory.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if min_mirror < 1.8 {
        eprintln!("compact mirror payload reduction {min_mirror:.2}x below the 1.8x target");
        std::process::exit(1);
    }
    if !mirrors_ok {
        eprintln!("a compact-mirror lane violated its answer contract");
        std::process::exit(1);
    }
}

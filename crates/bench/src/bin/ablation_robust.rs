//! Ablation D — the robust (outlier-tolerant) sliding-window extension.
//!
//! The paper's conclusions propose extending the algorithm to robust fair
//! center; this harness exercises our implementation of that extension on
//! a contaminated stream: a phones-like trajectory where a fraction of
//! readings are corrupted glitches placed far from the data. We sweep the
//! outlier budget `z` and report (a) the inlier radius of the robust
//! solution, (b) the plain algorithm's radius on the same stream, and
//! (c) memory, which grows with `z` (the coreset keeps `k_i + z` reps per
//! color per attractor). Every lane is a [`WindowEngine`] driven through
//! the [`SlidingWindowClustering`] trait.

use fairsw_bench::{caps_for, env_usize, fmt_duration};
use fairsw_core::{FairSWConfig, SlidingWindowClustering, VariantSpec, WindowEngine};
use fairsw_datasets::phones_like;
use fairsw_metric::{sampled_extremes, Colored, EuclidPoint, Euclidean};
use std::time::Instant;

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 2_000);
    let stream = env_usize("FAIRSW_STREAM", window * 3);
    let glitch_every = 211usize;

    println!("Ablation D: robust fair center in sliding windows");
    println!("window={window} stream={stream} glitch every {glitch_every} arrivals");

    // Contaminated stream: phones-like + far glitches.
    let base = phones_like(stream, 0xD0);
    let caps = caps_for(&base, 14);
    let points: Vec<Colored<EuclidPoint>> = base
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i % glitch_every == glitch_every - 1 {
                let far = 1e7 + (i as f64) * 13.0;
                Colored::new(EuclidPoint::new(vec![far, -far, far]), p.color)
            } else {
                p.clone()
            }
        })
        .collect();
    let raw: Vec<EuclidPoint> = points.iter().map(|c| c.point.clone()).collect();
    let ext = sampled_extremes(&Euclidean, &raw, 256).expect("non-degenerate");

    let cfg = FairSWConfig::builder()
        .window_size(window)
        .capacities(caps.clone())
        .beta(2.0)
        .delta(1.0)
        .build()
        .expect("valid");

    // One construction path for every lane: plain for contrast, then the
    // z sweep — all through the engine facade.
    let engine_for = |spec: VariantSpec| {
        WindowEngine::build(cfg.clone(), spec, Euclidean).expect("valid engine")
    };

    let mut plain = engine_for(VariantSpec::Fixed {
        dmin: ext.dmin,
        dmax: ext.dmax,
    });
    plain.insert_batch(points.iter().cloned());
    let psol = plain.query().expect("non-empty");
    println!(
        "\nplain        radius {:>12.2}  memory {:>7}  (glitches inflate the summary)",
        psol.coreset_radius,
        plain.stored_points()
    );

    let expected_glitches = window / glitch_every + 1;
    for z in [
        0usize,
        expected_glitches / 2,
        expected_glitches + 2,
        2 * expected_glitches,
    ] {
        let mut sw = engine_for(VariantSpec::Robust {
            z,
            dmin: ext.dmin,
            dmax: ext.dmax,
        });
        let t0 = Instant::now();
        sw.insert_batch(points.iter().cloned());
        let update = t0.elapsed() / points.len() as u32;
        let t0 = Instant::now();
        let sol = sw.query().expect("non-empty");
        let query = t0.elapsed();
        println!(
            "robust z={z:<3} radius {:>12.2}  memory {:>7}  outliers {:>2}  update {}  query {}",
            sol.coreset_radius,
            sw.stored_points(),
            sol.num_outliers(),
            fmt_duration(update),
            fmt_duration(query),
        );
    }
    println!(
        "\nOnce z covers the per-window glitch count, the inlier radius \
         collapses to the clean-data scale."
    );
}

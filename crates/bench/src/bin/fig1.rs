//! Figure 1 — approximation ratio (top) and memory (bottom) versus the
//! coreset precision δ, on the three dataset stand-ins with window
//! 10 000 (scaled via `FAIRSW_WINDOW`, default 2 000).
//!
//! Paper shape to verify: at δ = 4 our algorithms stay within 2× of the
//! baselines; at small δ they match them; memory is far below the window
//! and shrinks as δ grows; OursOblivious uses slightly less memory than
//! Ours.

use fairsw_bench::{
    caps_for, env_usize, print_table, run_experiment, standard_datasets, AlgoSpec,
    ExperimentParams, DELTA_SWEEP,
};

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 2_000);
    let stream = env_usize("FAIRSW_STREAM", window * 4);
    let params = ExperimentParams {
        window,
        ..ExperimentParams::default()
    };

    println!("Figure 1: approximation ratio and memory vs delta");
    println!("window={window} stream={stream} queries={}", params.queries);

    for ds in standard_datasets(stream, 0xF1) {
        let caps = caps_for(&ds, params.total_k);
        // Baselines once per dataset (their metrics are δ-independent).
        let base = run_experiment(
            &ds,
            &caps,
            &params,
            &[AlgoSpec::BaselineJones, AlgoSpec::BaselineChen],
        );
        print_table(
            &format!("{} — baselines", ds.name),
            &[("caps", &format!("{caps:?}"))],
            &base,
        );
        for delta in DELTA_SWEEP {
            let res = run_experiment(
                &ds,
                &caps,
                &params,
                &[
                    AlgoSpec::Ours { delta },
                    AlgoSpec::OursOblivious { delta },
                    AlgoSpec::BaselineJones,
                ],
            );
            print_table(
                &format!("{} — δ={delta}", ds.name),
                &[],
                &res[..2], // baselines already reported above
            );
        }
    }
}

//! Figure 4 — query time (left) and memory (right) versus the data
//! dimensionality, on the `blobs` datasets (21 Gaussians, σ = 2, 7
//! colors, k_i = 3, window 10 000 in the paper; scaled here).
//!
//! Paper shape to verify: the sequential baseline (Jones) is insensitive
//! to dimension, while our query time and memory grow with `d`, much
//! more steeply at δ = 0.5 than at δ = 2 — the `(c/ε)^D` coreset factor
//! made visible.

use fairsw_bench::{env_usize, print_table, run_experiment, AlgoSpec, ExperimentParams};
use fairsw_datasets::{blobs, BlobsParams};

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 2_000);
    let stream = env_usize("FAIRSW_STREAM", window * 4);
    let dims: Vec<usize> = (2..=env_usize("FAIRSW_MAX_DIM", 10)).collect();

    println!("Figure 4: query time and memory vs dimensionality (blobs)");
    println!("window={window} stream={stream} dims={dims:?} k_i=3 (7 colors)");

    // The paper sets k_i = 3 for each of the 7 colors.
    let caps = vec![3usize; 7];
    let params = ExperimentParams {
        window,
        ..ExperimentParams::default()
    };

    for &d in &dims {
        let ds = blobs(stream, d, BlobsParams::default(), 0xF4 + d as u64);
        let res = run_experiment(
            &ds,
            &caps,
            &params,
            &[
                AlgoSpec::Ours { delta: 0.5 },
                AlgoSpec::Ours { delta: 2.0 },
                AlgoSpec::BaselineJones,
            ],
        );
        print_table(&format!("blobs d={d}"), &[], &res);
    }
}

//! Serving-layer bench lane — tail latency of `fairsw-serve` under a
//! high, mostly idle connection count.
//!
//! The event-driven reactor's whole reason to exist is that thousands
//! of open connections must not cost thousands of threads — and must
//! not cost tail latency either. This lane measures exactly that:
//!
//! * boots an in-process server on an ephemeral port,
//! * holds **16 / 256 / 1024 connections** open (Zipf-assigned over a
//!   small tenant pool, the overwhelming majority idle at any instant),
//! * drives the *same* fixed request count through each lane with a
//!   query-dominated mix (~1 in 16 requests appends a point), and
//! * records client-side p50/p95/p99 request latency — request write to
//!   reply decode, so framing, the readiness loop and server queueing
//!   are all inside the measurement.
//!
//! Every lane is **answer-checked**: tenant writes come from a single
//! deterministic writer each, so after the sweep every tenant's `QUERY`
//! reply must be byte-identical to a sequential in-process oracle fed
//! the same stream prefix — a lane that got faster by dropping or
//! reordering points fails loudly.
//!
//! **Gate**: outside smoke mode (`FAIRSW_BENCH_SMOKE=1`) the p99 at the
//! largest lane (≥1k connections) must stay within **2×** the 16-
//! connection p99 — idle connections are allowed to cost a poll-set
//! scan, not a regime change. Violations exit non-zero.
//!
//! Results land in the `serve_concurrency` section of
//! `BENCH_serve.json` (beside `serve_throughput`'s ingest sweep).
//! Scaling knobs: `FAIRSW_WINDOW`, `FAIRSW_SERVE_REQUESTS`,
//! `FAIRSW_SERVE_TENANTS`, `FAIRSW_SERVE_SHARDS`.

use fairsw_bench::{env_usize, fmt_duration, merge_json_section};
use fairsw_core::{ParallelismSpec, SlidingWindowClustering};
use fairsw_serve::loadgen::{burst_config, workload, Client};
use fairsw_serve::net::raise_fd_limit;
use fairsw_serve::percentile::nearest_rank;
use fairsw_serve::protocol::{ErrorKind, Reply};
use fairsw_serve::server::{ServeConfig, Server};
use std::time::{Duration, Instant};

struct LaneReport {
    connections: usize,
    requests: u64,
    inserts: u64,
    overloaded: u64,
    elapsed: Duration,
    requests_per_sec: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
}

/// `splitmix64` — the same tiny deterministic PRNG the loadgen sweep
/// runs on.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Zipf-like pick over `n` tenants: weight `1/(i+1)`.
fn zipf_pick(n: usize, rng: &mut u64) -> usize {
    let h: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
    let mut u = (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64 * h;
    for i in 0..n {
        u -= 1.0 / (i + 1) as f64;
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    nearest_rank(sorted.len(), q).map_or(Duration::ZERO, |i| sorted[i])
}

fn tenant_name(t: usize) -> String {
    format!("lane-{t}")
}

fn tenant_seed(t: usize) -> u64 {
    t as u64 * 104_729
}

/// What one worker brings back from the measured phase.
struct WorkerOutcome {
    latencies: Vec<Duration>,
    overloaded: u64,
    inserts: u64,
    /// Wall-clock time of this worker's request loop (pool connects and
    /// the start barrier excluded).
    elapsed: Duration,
    /// `(tenant, points appended)` for every tenant this worker wrote —
    /// each tenant has exactly one writer, so the oracle can replay the
    /// applied prefix deterministically.
    applied: Vec<(usize, usize)>,
}

/// One sweep worker: owns an equal slice of the connection pool, issues
/// its share of the requests over PRNG-picked connections (~1 in 16
/// appends a point to one of the tenants this worker is the designated
/// writer for; the rest query the picked connection's tenant).
#[allow(clippy::too_many_arguments)]
fn lane_worker(
    addr: std::net::SocketAddr,
    w: usize,
    workers: usize,
    connections: usize,
    tenants: usize,
    warm: usize,
    requests: usize,
    start: &std::sync::Barrier,
) -> WorkerOutcome {
    let lo = w * connections / workers;
    let hi = (w + 1) * connections / workers;
    let mut rng = 0x5eed_u64 ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut pool: Vec<(Client, usize)> = (lo..hi)
        .map(|_| {
            let tenant = zipf_pick(tenants, &mut rng);
            (Client::connect(addr).expect("connect"), tenant)
        })
        .collect();

    // Tenants this worker is the sole writer for, with their streams
    // pre-generated past the warmup so appends continue the exact
    // sequence the oracle will replay.
    let owned: Vec<usize> = (0..tenants).filter(|t| t % workers == w).collect();
    let mut streams: Vec<(usize, Vec<_>, usize)> = owned
        .iter()
        .map(|&t| (t, workload(warm + requests, tenant_seed(t)), warm))
        .collect();
    let mut write_rr = 0usize;

    let my_requests = (w + 1) * requests / workers - w * requests / workers;
    let mut out = WorkerOutcome {
        latencies: Vec::with_capacity(my_requests),
        overloaded: 0,
        inserts: 0,
        elapsed: Duration::ZERO,
        applied: Vec::new(),
    };
    // Rendezvous #1: every pool is connected. The main thread then
    // waits for the reactor to finish accepting/registering the whole
    // pool (connect returns at handshake time, before accept), and
    // rendezvous #2 starts the measured steady-state phase.
    start.wait();
    start.wait();
    let loop0 = Instant::now();
    for _ in 0..my_requests {
        let write = !streams.is_empty() && splitmix64(&mut rng).is_multiple_of(16);
        let slot = (splitmix64(&mut rng) as usize) % pool.len().max(1);
        if write {
            let pick = write_rr % streams.len();
            let (t, stream, next) = &mut streams[pick];
            write_rr += 1;
            let name = tenant_name(*t);
            let t0 = Instant::now();
            match pool[slot].0.insert(&name, &stream[*next]).expect("insert") {
                Reply::Ok => {
                    out.latencies.push(t0.elapsed());
                    out.inserts += 1;
                    *next += 1;
                }
                // Not applied: the stream index stays put, so the
                // oracle prefix still matches.
                Reply::Error(ErrorKind::Overloaded, _) => out.overloaded += 1,
                other => panic!("{name}: unexpected insert reply {other:?}"),
            }
        } else {
            let (c, t) = &mut pool[slot];
            let name = tenant_name(*t);
            let t0 = Instant::now();
            match c.query(&name).expect("query") {
                Reply::Solution(_) => out.latencies.push(t0.elapsed()),
                Reply::Error(ErrorKind::Overloaded, _) => out.overloaded += 1,
                other => panic!("{name}: unexpected query reply {other:?}"),
            }
        }
    }
    out.elapsed = loop0.elapsed();
    out.applied = streams
        .iter()
        .map(|(t, _, next)| (*t, next - warm))
        .collect();
    out
}

/// Runs one connection-count lane against a fresh server and answer-
/// checks every tenant against a sequential oracle.
fn run_lane(
    connections: usize,
    tenants: usize,
    window: usize,
    warm: usize,
    requests: usize,
    workers: usize,
    shards: usize,
) -> LaneReport {
    let cfg = ServeConfig {
        shards,
        ..ServeConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", cfg).expect("server starts");
    let addr = handle.local_addr();
    let workers = workers.clamp(1, connections);

    // Create and warm the tenant pool over one ordinary client.
    let mut setup = Client::connect(addr).expect("connect setup");
    for t in 0..tenants {
        let name = tenant_name(t);
        match setup.create(&name, &burst_config(window)).expect("create") {
            Reply::Ok => {}
            other => panic!("{name}: create failed: {other:?}"),
        }
        for chunk in workload(warm, tenant_seed(t)).chunks(256) {
            setup.insert_batch_backoff(&name, chunk).expect("warmup");
        }
    }

    let start = std::sync::Barrier::new(workers + 1);
    let results: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let start = &start;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    lane_worker(
                        addr,
                        w,
                        workers,
                        connections,
                        tenants,
                        warm,
                        requests,
                        start,
                    )
                })
            })
            .collect();
        // Rendezvous #1: pools connected. Hold the workers until the
        // reactor has accepted and registered the whole pool (plus the
        // setup client), so the measured phase is steady state and not
        // the accept storm.
        start.wait();
        let accept_deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match setup.stats(&tenant_name(0)).expect("stats") {
                Reply::Stats(s) if s.conns_open as usize > connections => break,
                Reply::Stats(_) => {}
                other => panic!("unexpected stats reply {other:?}"),
            }
            assert!(
                Instant::now() < accept_deadline,
                "reactor did not register {connections} connections in time"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // Rendezvous #2: go.
        start.wait();
        handles
            .into_iter()
            .map(|h| h.join().expect("lane worker panicked"))
            .collect()
    });
    // Measured phase: every pool already connected (the barrier gates
    // the request loops); the lane time is the slowest worker's loop.
    let elapsed = results.iter().map(|r| r.elapsed).max().unwrap_or_default();

    // Answer check: each tenant saw its warmup plus the applied prefix
    // of its single writer's stream; the reply must be byte-identical
    // to a sequential oracle over exactly those points.
    let mut checker = Client::connect(addr).expect("connect checker");
    for r in &results {
        for &(t, applied) in &r.applied {
            let name = tenant_name(t);
            let mut oracle = burst_config(window)
                .build_engine()
                .expect("oracle config")
                .with_parallelism(ParallelismSpec::Sequential);
            for p in workload(warm + applied, tenant_seed(t)) {
                oracle.insert(p);
            }
            let got = checker.query(&name).expect("checker query");
            let want = Reply::from_query(&oracle.query());
            assert_eq!(
                got.encode().unwrap(),
                want.encode().unwrap(),
                "lane connections={connections}: tenant {t} diverged from oracle \
                 ({applied} appended points)"
            );
        }
    }
    handle.shutdown();

    let mut latencies: Vec<Duration> = results
        .iter()
        .flat_map(|r| r.latencies.iter().copied())
        .collect();
    latencies.sort();
    let issued = latencies.len() as u64 + results.iter().map(|r| r.overloaded).sum::<u64>();
    LaneReport {
        connections,
        requests: issued,
        inserts: results.iter().map(|r| r.inserts).sum(),
        overloaded: results.iter().map(|r| r.overloaded).sum(),
        elapsed,
        requests_per_sec: issued as f64 / elapsed.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
    }
}

fn main() {
    let smoke = std::env::var("FAIRSW_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let window = env_usize("FAIRSW_WINDOW", 500);
    let warm = window + window / 5;
    let requests = env_usize("FAIRSW_SERVE_REQUESTS", if smoke { 400 } else { 8_000 });
    let tenants = env_usize("FAIRSW_SERVE_TENANTS", if smoke { 4 } else { 8 });
    let shards = env_usize("FAIRSW_SERVE_SHARDS", 2);
    let workers = if smoke { 4 } else { 8 };
    let sweep: &[usize] = if smoke { &[4, 16] } else { &[16, 256, 1024] };

    let max_conns = *sweep.iter().max().unwrap();
    let limit = raise_fd_limit(2 * max_conns as u64 + 128);
    assert!(
        limit >= 2 * max_conns as u64 + 64,
        "open-file limit {limit} too low for {max_conns} in-process connections \
         (raise `ulimit -n`)"
    );

    println!(
        "Serve concurrency: window={window} requests/lane={requests} tenants={tenants} \
         shards={shards} workers={workers}{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>12} {:>9} {:>8} {:>10} {:>11} {:>10} {:>10} {:>10}",
        "connections", "requests", "inserts", "elapsed", "req/s", "p50", "p95", "p99"
    );

    let mut lanes: Vec<LaneReport> = Vec::new();
    for &connections in sweep {
        let lane = run_lane(
            connections,
            tenants,
            window,
            warm,
            requests,
            workers,
            shards,
        );
        println!(
            "{:>12} {:>9} {:>8} {:>10} {:>11.0} {:>10} {:>10} {:>10}",
            lane.connections,
            lane.requests,
            lane.inserts,
            fmt_duration(lane.elapsed),
            lane.requests_per_sec,
            fmt_duration(lane.p50),
            fmt_duration(lane.p95),
            fmt_duration(lane.p99),
        );
        lanes.push(lane);
    }

    // Tail-latency gate: the largest lane's p99 within 2x of the
    // smallest lane's — idle connections must not change the regime.
    let base = lanes.first().expect("at least one lane");
    let top = lanes.last().expect("at least one lane");
    let ratio = top.p99.as_secs_f64() / base.p99.as_secs_f64().max(1e-9);
    println!(
        "p99 scaling: {} conns {} -> {} conns {} ({ratio:.2}x)",
        base.connections,
        fmt_duration(base.p99),
        top.connections,
        fmt_duration(top.p99),
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"window\": {window},\n  \"requests_per_lane\": {requests},\n  \"tenants\": {tenants},\n  \"shards\": {shards},\n  \"workers\": {workers},\n  \"host_cores\": {},\n  \"answer_checked\": true,\n  \"smoke\": {smoke},\n  \"lanes\": [\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    for (i, l) in lanes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"connections\": {}, \"requests\": {}, \"inserts\": {}, \"overloaded\": {}, \"elapsed_secs\": {:.6}, \"requests_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
            l.connections,
            l.requests,
            l.inserts,
            l.overloaded,
            l.elapsed.as_secs_f64(),
            l.requests_per_sec,
            l.p50.as_secs_f64() * 1e6,
            l.p95.as_secs_f64() * 1e6,
            l.p99.as_secs_f64() * 1e6,
            if i + 1 < lanes.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"p99_gate\": {{\"baseline_connections\": {}, \"max_connections\": {}, \"ratio\": {ratio:.3}, \"limit\": 2.0, \"enforced\": {}}}\n}}",
        base.connections,
        top.connections,
        !smoke
    ));
    let path = "BENCH_serve.json";
    match merge_json_section(path, "serve_concurrency", &json) {
        Ok(()) => println!("wrote the serve_concurrency section of {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !smoke && ratio > 2.0 {
        eprintln!(
            "FAIL: p99 at {} connections is {ratio:.2}x the {}-connection p99 (limit 2.0x)",
            top.connections, base.connections
        );
        std::process::exit(1);
    }
}

//! Incremental-query bench lane — cold vs warm `QUERY` latency through
//! the serve-side result cache, per variant.
//!
//! Boots an in-process server, ingests a stream into one tenant per
//! variant, then measures two query regimes over the same connection:
//!
//! * **cold** — every query is preceded by a single-point `INSERT`, so
//!   the tenant's version moves and the reply is recomputed on the
//!   shard (engine query + encode + wire);
//! * **warm** — repeat queries with no intervening write, answered from
//!   the serve-side result cache on the connection thread (wire only).
//!
//! Every warm reply is **answer-checked** byte-identical to the last
//! cold recompute — a cache that got fast by serving stale bytes fails
//! loudly. Results land in `BENCH_query.json` with the p50 of both
//! regimes and the speedup per variant; outside smoke mode the lane
//! enforces warm ≥ 10× faster than cold.
//!
//! `FAIRSW_BENCH_SMOKE=1` shrinks everything for a CI bitrot check
//! (timing informational, identity still enforced). Scaling knobs:
//! `FAIRSW_WINDOW`, `FAIRSW_STREAM`, `FAIRSW_QUERY_REPS`, `FAIRSW_DIM`.

use fairsw_bench::{env_usize, fmt_duration};
use fairsw_metric::{Colored, EuclidPoint};
use fairsw_serve::loadgen::{workload, Client};
use fairsw_serve::percentile::nearest_rank;
use fairsw_serve::protocol::{Reply, TenantConfig, WireVariant};
use fairsw_serve::server::{ServeConfig, Server};
use std::io::Write as _;
use std::time::{Duration, Instant};

const DMIN: f64 = 1e-3;
const DMAX: f64 = 1e4;

fn variants(window: usize, cap: usize) -> Vec<(&'static str, TenantConfig)> {
    let base = |v| TenantConfig::new(window, vec![cap, cap], v);
    vec![
        (
            "fixed",
            base(WireVariant::Fixed {
                dmin: DMIN,
                dmax: DMAX,
            }),
        ),
        ("oblivious", base(WireVariant::Oblivious)),
        (
            "compact",
            base(WireVariant::Compact {
                dmin: DMIN,
                dmax: DMAX,
            }),
        ),
        (
            "robust",
            base(WireVariant::Robust {
                z: 2,
                dmin: DMIN,
                dmax: DMAX,
            }),
        ),
        (
            "matroid",
            base(WireVariant::Matroid {
                dmin: DMIN,
                dmax: DMAX,
            }),
        ),
    ]
}

struct LaneReport {
    variant: &'static str,
    cold_p50: Duration,
    warm_p50: Duration,
    speedup: f64,
}

fn p50(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    nearest_rank(samples.len(), 0.5).map_or(Duration::ZERO, |i| samples[i])
}

/// Lifts the 2-D loadgen stream to `dim` coordinates by tiling them, so
/// every distance evaluation in the recompute path pays the full
/// `dim`-wide cost while the cluster structure (and the `DMIN`/`DMAX`
/// band, up to a `sqrt(dim / 2)` scale well inside it) is preserved.
/// The full-size lane uses wide points so "cold" reflects a realistic
/// recompute, not a toy 2-D scan.
fn lift(stream: Vec<Colored<EuclidPoint>>, dim: usize) -> Vec<Colored<EuclidPoint>> {
    stream
        .into_iter()
        .map(|c| {
            let base = c.point.coords();
            let coords: Vec<f64> = (0..dim).map(|j| base[j % base.len()]).collect();
            Colored::new(EuclidPoint::new(coords), c.color)
        })
        .collect()
}

fn main() {
    let smoke = std::env::var("FAIRSW_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let window = env_usize("FAIRSW_WINDOW", if smoke { 200 } else { 1_000 });
    let points = env_usize("FAIRSW_STREAM", window * 4);
    let reps = env_usize("FAIRSW_QUERY_REPS", if smoke { 10 } else { 50 });
    let dim = env_usize("FAIRSW_DIM", if smoke { 2 } else { 64 });
    // Per-color capacity: k = 2 * cap centers. The full-size lane uses a
    // wider instance so the recompute path carries a realistic amount of
    // packing-scan work per query.
    let cap = env_usize("FAIRSW_CAP", if smoke { 2 } else { 8 });

    println!("Incremental queries: cold (recompute) vs warm (result cache) p50 per variant");
    println!("window={window} stream={points} reps={reps} dim={dim} cap={cap} smoke={smoke}");
    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "variant", "cold p50", "warm p50", "speedup"
    );

    let handle = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server starts");
    let addr = handle.local_addr();
    let stream = lift(workload(points + reps, 7), dim);

    let mut reports: Vec<LaneReport> = Vec::new();
    for (name, config) in variants(window, cap) {
        let mut c = Client::connect(addr).expect("connect");
        match c.create(name, &config).expect("create reply") {
            Reply::Ok => {}
            other => panic!("{name}: create failed: {other:?}"),
        }
        for chunk in stream[..points].chunks(128) {
            c.insert_batch_backoff(name, chunk)
                .expect("ingest accepted");
        }

        // Cold: each rep moves the tenant version with one insert, so
        // the timed query recomputes on the shard.
        let mut cold = Vec::with_capacity(reps);
        let mut last = None;
        for p in &stream[points..points + reps] {
            match c.insert(name, p).expect("insert reply") {
                Reply::Ok => {}
                other => panic!("{name}: insert failed: {other:?}"),
            }
            let t0 = Instant::now();
            let reply = c.query(name).expect("query reply");
            cold.push(t0.elapsed());
            assert!(
                matches!(reply, Reply::Solution(_)),
                "{name}: cold query failed: {reply:?}"
            );
            last = Some(reply);
        }
        let want = last.expect("at least one cold rep").encode().unwrap();

        // Warm: no writes intervene, so every rep is a cache hit — and
        // must return exactly the bytes of the last recompute.
        let mut warm = Vec::with_capacity(reps);
        for rep in 0..reps {
            let t0 = Instant::now();
            let reply = c.query(name).expect("query reply");
            warm.push(t0.elapsed());
            assert_eq!(
                reply.encode().unwrap(),
                want,
                "{name}: warm rep {rep} diverged from the cold recompute"
            );
        }

        let (cold_p50, warm_p50) = (p50(cold), p50(warm));
        let speedup = cold_p50.as_secs_f64() / warm_p50.as_secs_f64().max(1e-9);
        println!(
            "{:<10} {:>12} {:>12} {:>8.1}x",
            name,
            fmt_duration(cold_p50),
            fmt_duration(warm_p50),
            speedup
        );
        reports.push(LaneReport {
            variant: name,
            cold_p50,
            warm_p50,
            speedup,
        });
    }
    handle.shutdown();

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"query_incremental\",\n  \"window\": {window},\n  \"stream\": {points},\n  \"reps\": {reps},\n  \"dim\": {dim},\n  \"cap\": {cap},\n  \"answer_checked\": true,\n  \"lanes\": [\n"
    ));
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"variant\": \"{}\", \"cold_p50_us\": {:.1}, \"warm_p50_us\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.variant,
            r.cold_p50.as_secs_f64() * 1e6,
            r.warm_p50.as_secs_f64() * 1e6,
            r.speedup,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_query.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // A cache hit skips the shard round-trip and the whole recompute;
    // at real sizes that is well over an order of magnitude. Smoke runs
    // use sizes too small for stable timing, so there the ratio is
    // informational only (identity above is always enforced).
    if !smoke {
        for r in &reports {
            assert!(
                r.speedup >= 10.0,
                "{}: warm p50 only {:.1}x faster than cold (want >= 10x)",
                r.variant,
                r.speedup
            );
        }
        println!("warm >= 10x cold: ok on every variant");
    }
}

//! Figure 2 — update time (top) and query time (bottom, log scale)
//! versus δ, same setup as Figure 1.
//!
//! Paper shape to verify: baselines have near-zero update time but query
//! times orders of magnitude above ours (ChenEtAl ≫ Jones ≫ Ours);
//! larger δ (smaller coresets) speeds up both update and query;
//! OursOblivious is faster than Ours (fewer guesses).

use fairsw_bench::{
    caps_for, env_usize, print_table, run_experiment, standard_datasets, AlgoSpec,
    ExperimentParams, DELTA_SWEEP,
};

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 2_000);
    let stream = env_usize("FAIRSW_STREAM", window * 4);
    let params = ExperimentParams {
        window,
        ..ExperimentParams::default()
    };

    println!("Figure 2: update and query time vs delta");
    println!("window={window} stream={stream} queries={}", params.queries);

    for ds in standard_datasets(stream, 0xF2) {
        let caps = caps_for(&ds, params.total_k);
        let base = run_experiment(
            &ds,
            &caps,
            &params,
            &[AlgoSpec::BaselineJones, AlgoSpec::BaselineChen],
        );
        print_table(&format!("{} — baselines", ds.name), &[], &base);
        for delta in DELTA_SWEEP {
            let res = run_experiment(
                &ds,
                &caps,
                &params,
                &[AlgoSpec::Ours { delta }, AlgoSpec::OursOblivious { delta }],
            );
            print_table(&format!("{} — δ={delta}", ds.name), &[], &res);
        }
    }
}

//! Kernel-throughput bench lane — scalar pointwise distances vs the
//! columnar batched kernels of the distance layer.
//!
//! Two measurements, both answer-checked to the bit:
//!
//! * **Raw kernels** — `dist_one_to_many` over a staged
//!   [`CoresetView`] versus the same call on an unstaged view (the
//!   scalar fallback: one `dist` per row, chasing an `Arc<[f64]>`
//!   pointer per point — exactly the pre-refactor access pattern), at
//!   several dimensionalities.
//! * **Distance-dominated query microbench** — the acceptance gate.
//!   Two identical fixed-lattice engines stream the same
//!   high-dimensional workload; one runs under [`Euclidean`], the other
//!   under a `ScalarOnly` wrapper whose only difference is *not*
//!   overriding the kernel hooks, so every query distance falls back to
//!   pointwise scalar evaluation. Repeated `query_with` calls (best of
//!   three rounds per lane) are timed on both; solutions must be
//!   bit-identical (same winning guess, radius bits and centers), so
//!   the speedup is attributable to the kernel layer alone. The gated
//!   lane queries through the matching-free greedy-swap solver
//!   (`Kleindessner`), whose cost is almost entirely pairwise
//!   distances; a second lane through the default `Jones` solver is
//!   reported for context (its capacitated-matching bookkeeping is
//!   distance-independent, so its attributable speedup is smaller).
//!
//! Results land in `BENCH_kernels.json` with the ≥ 1.5× query-speedup
//! target recorded for the driver.
//!
//! Scaling knobs: `FAIRSW_WINDOW` (default 2 000), `FAIRSW_STREAM`
//! (default 2×window), `FAIRSW_QUERY_REPS` (default 50),
//! `FAIRSW_KERNEL_REPS` (default 200), `FAIRSW_DIM` (default 48).
//! `FAIRSW_BENCH_SMOKE=1` shrinks everything for a CI bitrot check
//! (the speedup is still reported, but timing noise at smoke sizes is
//! expected — the bit-identity checks are the point there).

use fairsw_bench::{env_usize, fmt_duration};
use fairsw_core::{FairSWConfig, FairSlidingWindow, SlidingWindowClustering, Solution};
use fairsw_datasets::BlobsParams;
use fairsw_metric::{
    active_isa, sampled_extremes, CoresetView, EuclidPoint, Euclidean, Exactness, Metric, Relaxed,
};
use fairsw_sequential::{FairCenterSolver, Jones, Kleindessner};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// A metric identical to the wrapped one except that it does not stage
/// views or override the block kernels — every batched call degrades to
/// the scalar per-pair fallback. The "before" lane of the comparison.
#[derive(Clone, Copy, Debug, Default)]
struct ScalarOnly<M>(M);

impl<M: Metric> Metric for ScalarOnly<M> {
    type Point = M::Point;

    #[inline]
    fn dist(&self, a: &M::Point, b: &M::Point) -> f64 {
        self.0.dist(a, b)
    }
}

struct KernelLane {
    dim: usize,
    points: usize,
    reps: usize,
    scalar: Duration,
    batched: Duration,
    simd: Duration,
    speedup: f64,
    simd_speedup: f64,
}

/// Times `reps` full `dist_one_to_many` sweeps over `view` (best of
/// three rounds — standard noise suppression on a shared host),
/// returning a fold of the outputs so the work cannot be optimized away.
fn time_kernel<M: Metric<Point = EuclidPoint>>(
    metric: &M,
    q: &EuclidPoint,
    view: &CoresetView<EuclidPoint>,
    reps: usize,
    out: &mut [f64],
) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut check = 0u64;
    for _ in 0..3 {
        check = 0;
        let t0 = Instant::now();
        for _ in 0..reps {
            metric.dist_one_to_many(q, view, out);
            check ^= out.iter().fold(0u64, |acc, d| acc ^ d.to_bits());
        }
        best = best.min(t0.elapsed());
    }
    (best, check)
}

fn kernel_lanes(reps: usize) -> Vec<KernelLane> {
    [4usize, 16, 64, 256, 1024]
        .into_iter()
        .map(|dim| {
            // Size each lane so the staged block stays cache-resident
            // (≤ 2 MB): the lane measures kernel arithmetic, not DRAM
            // bandwidth — wide-dim candidate sets of thousands of
            // points do not arise in coreset-sized views anyway.
            let n = 4096usize.min((1 << 20) / (8 * dim)).max(128);
            // Keep per-lane flop counts comparable: fewer reps at the
            // wide dims (floor of 2 so the measurement stays real).
            let reps = (reps * (4096 * 64) / (n * 64.max(dim))).max(2);
            let points: Vec<EuclidPoint> = (0..n)
                .map(|i| {
                    EuclidPoint::new(
                        (0..dim)
                            .map(|d| ((i * 31 + d * 7 + 1) as f64 * 0.618_033_988_7).fract() * 10.0)
                            .collect::<Vec<f64>>(),
                    )
                })
                .collect();
            let q = points[0].clone();
            let mut out = vec![0.0f64; n];

            // Staged exact lane (columnar kernels, bit-identical).
            let mut staged = CoresetView::new();
            staged.gather(&Euclidean, points.iter());
            let (batched, check_b) = time_kernel(&Euclidean, &q, &staged, reps, &mut out);

            // Staged SIMD lane: the same columns, `Approx` mode — the
            // runtime-dispatched vector kernels (scalar fallback when
            // the host has none, making this lane ≈ the exact one).
            let relaxed = Relaxed::new(Euclidean, Exactness::Approx { epsilon: 0.0 });
            let mut staged_simd = CoresetView::new();
            staged_simd.gather(&relaxed, points.iter());
            let (simd, _check_v) = time_kernel(&relaxed, &q, &staged_simd, reps, &mut out);
            // FMA contraction may shift the low bits, so the SIMD lane
            // is tolerance-checked rather than bit-checked.
            let mut exact_out = vec![0.0f64; n];
            Euclidean.dist_one_to_many(&q, &staged, &mut exact_out);
            for (i, (&a, &b)) in exact_out.iter().zip(out.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "dim {dim} row {i}: simd {b} vs exact {a}"
                );
            }

            // Scalar lane: same view shape, no staged columns.
            let scalar_metric = ScalarOnly(Euclidean);
            let mut raw = CoresetView::new();
            raw.gather(&scalar_metric, points.iter());
            assert!(raw.soa().is_none(), "ScalarOnly must not stage columns");
            let (scalar, check_s) = time_kernel(&scalar_metric, &q, &raw, reps, &mut out);

            assert_eq!(check_b, check_s, "dim {dim}: kernel diverged from scalar");
            KernelLane {
                dim,
                points: n,
                reps,
                scalar,
                batched,
                simd,
                speedup: scalar.as_secs_f64() / batched.as_secs_f64().max(1e-12),
                simd_speedup: scalar.as_secs_f64() / simd.as_secs_f64().max(1e-12),
            }
        })
        .collect()
}

/// Streams the workload into a fixed-variant engine under `metric` and
/// times `reps` repeated queries through `solver`. Returns the
/// (identical) solution and the total query time.
#[allow(clippy::too_many_arguments)] // bench plumbing; mirrors the lane's knobs
fn query_lane<M, S>(
    metric: M,
    solver: &S,
    points: &[fairsw_metric::Colored<EuclidPoint>],
    caps: &[usize],
    window: usize,
    dmin: f64,
    dmax: f64,
    reps: usize,
) -> (Solution<EuclidPoint>, Duration)
where
    M: Metric<Point = EuclidPoint> + Sync,
    S: FairCenterSolver<M> + Sync,
{
    let cfg = FairSWConfig::builder()
        .window_size(window)
        .capacities(caps.to_vec())
        .beta(2.0)
        .delta(0.5)
        .build()
        .expect("valid bench config");
    let mut engine = FairSlidingWindow::new(cfg, metric, dmin, dmax).expect("valid bench config");
    for chunk in points.chunks(512) {
        engine.insert_batch(chunk.iter().cloned());
    }
    // Best-of-3 rounds: repeated identical queries, minimum round time
    // (standard noise suppression on a shared host).
    let mut best = Duration::MAX;
    let mut sol = engine.query_with(solver).expect("bench query answers");
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps.max(1) {
            sol = engine.query_with(solver).expect("bench query answers");
        }
        best = best.min(t0.elapsed());
    }
    (sol, best)
}

fn assert_identical(a: &Solution<EuclidPoint>, b: &Solution<EuclidPoint>) {
    assert_eq!(
        a.guess.to_bits(),
        b.guess.to_bits(),
        "winning guess diverged"
    );
    assert_eq!(
        a.coreset_radius.to_bits(),
        b.coreset_radius.to_bits(),
        "radius diverged"
    );
    assert_eq!(a.coreset_size, b.coreset_size, "coreset size diverged");
    assert_eq!(a.centers.len(), b.centers.len(), "center count diverged");
    for (i, (x, y)) in a.centers.iter().zip(&b.centers).enumerate() {
        assert_eq!(x.color, y.color, "center[{i}] color diverged");
        assert_eq!(
            x.point.coords(),
            y.point.coords(),
            "center[{i}] coordinates diverged"
        );
    }
}

fn main() {
    let smoke = std::env::var("FAIRSW_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let window = env_usize("FAIRSW_WINDOW", if smoke { 300 } else { 2_000 });
    let stream = env_usize("FAIRSW_STREAM", window * 2);
    let query_reps = env_usize("FAIRSW_QUERY_REPS", if smoke { 2 } else { 50 });
    let kernel_reps = env_usize("FAIRSW_KERNEL_REPS", if smoke { 5 } else { 200 });
    // Dim 48: high-dimensional embeddings are the query-heavy regime the
    // columnar layer targets; the kernel advantage grows with dimension.
    let dim = env_usize("FAIRSW_DIM", 48);

    println!("Kernel throughput: scalar vs columnar batched distance kernels");
    println!("window={window} stream={stream} dim={dim} query_reps={query_reps} smoke={smoke}");

    // --- raw kernel lanes ------------------------------------------------
    let isa = active_isa();
    println!("simd isa: {}", isa.name());
    let lanes = kernel_lanes(kernel_reps);
    println!(
        "\n{:<6} {:>7} {:>6} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "dim", "points", "reps", "scalar", "batched", "simd", "speedup", "simd-x"
    );
    for l in &lanes {
        println!(
            "{:<6} {:>7} {:>6} {:>12} {:>12} {:>12} {:>8.2}x {:>8.2}x",
            l.dim,
            l.points,
            l.reps,
            fmt_duration(l.scalar),
            fmt_duration(l.batched),
            fmt_duration(l.simd),
            l.speedup,
            l.simd_speedup
        );
    }

    // --- distance-dominated query microbench -----------------------------
    let ds = fairsw_datasets::blobs(
        stream,
        dim,
        BlobsParams {
            components: 21,
            sigma: 2.0,
            num_colors: 7,
            center_box: 100.0,
        },
        0xD157,
    );
    let caps = fairsw_bench::caps_for(&ds, 14);
    let raw: Vec<EuclidPoint> = ds.points.iter().map(|c| c.point.clone()).collect();
    let ext = sampled_extremes(&Euclidean, &raw, 256).expect("non-degenerate dataset");

    // Headline lane: the greedy-swap solver — its query cost is almost
    // entirely pairwise distances (Gonzalez sweep + swap scans + radius,
    // no matching machinery), so it isolates the kernel layer.
    let (sol_scalar, t_scalar) = query_lane(
        ScalarOnly(Euclidean),
        &Kleindessner,
        &ds.points,
        &caps,
        window,
        ext.dmin,
        ext.dmax,
        query_reps,
    );
    let (sol_batched, t_batched) = query_lane(
        Euclidean,
        &Kleindessner,
        &ds.points,
        &caps,
        window,
        ext.dmin,
        ext.dmax,
        query_reps,
    );
    // The speedup must not come from a different answer.
    assert_identical(&sol_scalar, &sol_batched);

    // Secondary lane: the paper's default solver (Jones). Its matching
    // bookkeeping is distance-independent, so the attributable speedup
    // is smaller — reported for context, not gated.
    let (sol_js, t_jones_scalar) = query_lane(
        ScalarOnly(Euclidean),
        &Jones,
        &ds.points,
        &caps,
        window,
        ext.dmin,
        ext.dmax,
        query_reps,
    );
    let (sol_jb, t_jones_batched) = query_lane(
        Euclidean, &Jones, &ds.points, &caps, window, ext.dmin, ext.dmax, query_reps,
    );
    assert_identical(&sol_js, &sol_jb);

    let query_speedup = t_scalar.as_secs_f64() / t_batched.as_secs_f64().max(1e-12);
    let jones_speedup = t_jones_scalar.as_secs_f64() / t_jones_batched.as_secs_f64().max(1e-12);
    println!(
        "\nquery microbench ({} queries, coreset {}): scalar {} vs batched {} -> {:.2}x (target >= 1.5x{})",
        query_reps,
        sol_batched.coreset_size,
        fmt_duration(t_scalar / query_reps.max(1) as u32),
        fmt_duration(t_batched / query_reps.max(1) as u32),
        query_speedup,
        if smoke { ", smoke mode: informational" } else { "" },
    );
    println!(
        "jones lane (matching overhead included): scalar {} vs batched {} -> {:.2}x",
        fmt_duration(t_jones_scalar / query_reps.max(1) as u32),
        fmt_duration(t_jones_batched / query_reps.max(1) as u32),
        jones_speedup,
    );

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"kernel_throughput\",\n  \"window\": {window},\n  \"stream\": {stream},\n  \"dim\": {dim},\n  \"query_reps\": {query_reps},\n  \"host_cores\": {host_cores},\n  \"smoke\": {smoke},\n  \"isa\": \"{}\",\n  \"query_speedup\": {query_speedup:.3},\n  \"query_speedup_target\": 1.5,\n  \"jones_query_speedup\": {jones_speedup:.3},\n  \"jones_query_speedup_target\": 1.5,\n  \"simd_kernel_speedup_target\": 3.0,\n  \"coreset_size\": {},\n  \"answers_bit_identical\": true,\n  \"kernel_lanes\": [\n",
        isa.name(),
        sol_batched.coreset_size
    ));
    for (i, l) in lanes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dim\": {}, \"points\": {}, \"reps\": {}, \"scalar_ns\": {}, \"batched_ns\": {}, \"simd_ns\": {}, \"speedup\": {:.3}, \"simd_speedup\": {:.3}}}{}\n",
            l.dim,
            l.points,
            l.reps,
            l.scalar.as_nanos(),
            l.batched.as_nanos(),
            l.simd.as_nanos(),
            l.speedup,
            l.simd_speedup,
            if i + 1 < lanes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_kernels.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let mut failed = false;
    if !smoke && query_speedup < 1.5 {
        eprintln!("query speedup {query_speedup:.2}x below the 1.5x target");
        failed = true;
    }
    if !smoke && jones_speedup < 1.5 {
        eprintln!("jones query speedup {jones_speedup:.2}x below the 1.5x target");
        failed = true;
    }
    // The vector-kernel gate only binds where a vector ISA actually ran
    // (the recorded `isa` field proves which path was measured).
    if !smoke && isa.name() != "scalar" {
        for l in lanes.iter().filter(|l| l.dim >= 16) {
            if l.simd_speedup < 3.0 {
                eprintln!(
                    "dim {} simd kernel speedup {:.2}x below the 3x target ({} isa)",
                    l.dim,
                    l.simd_speedup,
                    isa.name()
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

//! Ablation C — scaling in the total budget k.
//!
//! Theorem 2 bounds the stored points by `O(k² log Δ (c/ε)^D)`. This
//! ablation doubles k (balanced budgets across 7 colors) and reports
//! memory and times, making the quadratic-in-k trend observable.

use fairsw_bench::{env_usize, print_table, run_experiment, AlgoSpec, ExperimentParams};
use fairsw_datasets::{blobs, BlobsParams};

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 2_000);
    let stream = env_usize("FAIRSW_STREAM", window * 4);
    // Balanced budgets over 7 colors: k = 7, 14, 28, 56.
    let per_color = [1usize, 2, 4, 8];

    println!("Ablation C: memory/time scaling in k (blobs d=3, δ=1)");
    println!("window={window} stream={stream}");

    let ds = blobs(stream, 3, BlobsParams::default(), 0xAF);
    for &ki in &per_color {
        let caps = vec![ki; 7];
        let params = ExperimentParams {
            window,
            total_k: ki * 7,
            ..ExperimentParams::default()
        };
        let res = run_experiment(
            &ds,
            &caps,
            &params,
            &[
                AlgoSpec::Ours { delta: 1.0 },
                AlgoSpec::OursOblivious { delta: 1.0 },
                AlgoSpec::BaselineJones,
            ],
        );
        print_table(&format!("k = {} (k_i = {ki})", ki * 7), &[], &res);
    }
}

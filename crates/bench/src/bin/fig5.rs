//! Figure 5 — query time and memory versus the number of *coordinates*,
//! on the `rotated` datasets: intrinsically 3-dimensional data padded to
//! up to 15 coordinates and rigidly rotated.
//!
//! Paper shape to verify: unlike Figure 4, both query time and memory
//! stay flat as coordinates are added — the algorithm's cost depends on
//! the doubling dimension of the data, not the ambient dimension.

use fairsw_bench::{caps_for, env_usize, print_table, run_experiment, AlgoSpec, ExperimentParams};
use fairsw_datasets::rotated;

fn main() {
    let window = env_usize("FAIRSW_WINDOW", 2_000);
    let stream = env_usize("FAIRSW_STREAM", window * 4);
    let dims = [3usize, 6, 9, 12, 15];

    println!("Figure 5: query time and memory vs #coordinates (rotated)");
    println!("window={window} stream={stream} dims={dims:?}");

    let params = ExperimentParams {
        window,
        ..ExperimentParams::default()
    };

    for &d in &dims {
        // Same base stream (same seed) for every ambient dimension: all
        // pairwise distances are identical across d by construction.
        let ds = rotated(stream, d, 0xF5);
        let caps = caps_for(&ds, params.total_k);
        let res = run_experiment(
            &ds,
            &caps,
            &params,
            &[
                AlgoSpec::Ours { delta: 0.5 },
                AlgoSpec::Ours { delta: 2.0 },
                AlgoSpec::BaselineJones,
            ],
        );
        print_table(&format!("rotated d={d}"), &[], &res);
    }
}

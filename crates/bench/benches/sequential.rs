//! Criterion micro-benchmarks for the sequential solvers: the evaluation
//! claims ChenEtAl ≫ Jones ≫ coreset-sized runs; this pins the per-call
//! costs at several instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairsw_bench::caps_for;
use fairsw_datasets::covtype_like;
use fairsw_metric::Euclidean;
use fairsw_sequential::{ChenEtAl, FairCenterSolver, Instance, Jones, Kleindessner, RobustFair};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential");
    group.sample_size(10);
    for n in [100usize, 400, 1_000] {
        let ds = covtype_like(n, 0xD0 + n as u64);
        let caps = caps_for(&ds, 14);
        let inst = Instance::new(&Euclidean, &ds.points, &caps);
        group.bench_with_input(BenchmarkId::new("jones", n), &n, |b, _| {
            b.iter(|| black_box(Jones.solve(&inst).expect("solves")))
        });
        group.bench_with_input(BenchmarkId::new("kleindessner", n), &n, |b, _| {
            b.iter(|| black_box(Kleindessner.solve(&inst).expect("solves")))
        });
        if n <= 400 {
            // ChenEtAl is quadratic in n: keep the bench tractable.
            group.bench_with_input(BenchmarkId::new("chen", n), &n, |b, _| {
                b.iter(|| black_box(ChenEtAl::new().solve(&inst).expect("solves")))
            });
        }
    }
    group.finish();
}

fn bench_robust(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust_fair");
    group.sample_size(10);
    for n in [100usize, 300] {
        let ds = covtype_like(n, 0xE0 + n as u64);
        let caps = caps_for(&ds, 14);
        let inst = Instance::new(&Euclidean, &ds.points, &caps);
        for z in [0usize, 5] {
            group.bench_with_input(BenchmarkId::new(format!("z{z}"), n), &n, |b, _| {
                b.iter(|| black_box(RobustFair::new(z).solve_robust(&inst).expect("solves")))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_robust);
criterion_main!(benches);

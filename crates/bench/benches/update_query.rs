//! Criterion micro-benchmarks for the streaming operations: per-arrival
//! `Update` and on-demand `Query`, across coreset precisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairsw_bench::caps_for;
use fairsw_core::{
    FairSWConfig, FairSlidingWindow, ObliviousFairSlidingWindow, SlidingWindowClustering,
};
use fairsw_datasets::phones_like;
use fairsw_metric::Euclidean;
use std::hint::black_box;

fn build(delta: f64, window: usize, warm: usize) -> FairSlidingWindow<Euclidean> {
    let ds = phones_like(warm + window, 0xBE);
    let caps = caps_for(&ds, 14);
    let cfg = FairSWConfig::builder()
        .window_size(window)
        .capacities(caps)
        .beta(2.0)
        .delta(delta)
        .build()
        .expect("valid config");
    let mut sw = FairSlidingWindow::new(cfg, Euclidean, 1e-4, 1e4).expect("valid");
    for p in &ds.points[..warm] {
        sw.insert(p.clone());
    }
    sw
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("update");
    for delta in [0.5f64, 2.0, 4.0] {
        let window = 2_000;
        let mut sw = build(delta, window, window);
        let ds = phones_like(window, 0xBF);
        let mut idx = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, _| {
            b.iter(|| {
                sw.insert(black_box(ds.points[idx % ds.points.len()].clone()));
                idx += 1;
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    group.sample_size(20);
    for delta in [0.5f64, 2.0, 4.0] {
        let window = 2_000;
        let sw = build(delta, window, 2 * window);
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, _| {
            b.iter(|| black_box(sw.query().expect("query succeeds")))
        });
    }
    group.finish();
}

fn bench_oblivious_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("oblivious_update");
    let window = 2_000;
    let ds = phones_like(3 * window, 0xC0);
    let caps = caps_for(&ds, 14);
    let cfg = FairSWConfig::builder()
        .window_size(window)
        .capacities(caps)
        .beta(2.0)
        .delta(1.0)
        .build()
        .expect("valid");
    let mut sw = ObliviousFairSlidingWindow::new(cfg, Euclidean).expect("valid");
    for p in &ds.points[..window] {
        sw.insert(p.clone());
    }
    let mut idx = window;
    group.bench_function("delta=1", |b| {
        b.iter(|| {
            sw.insert(black_box(ds.points[idx % ds.points.len()].clone()));
            idx += 1;
        })
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    let sw = build(1.0, 2_000, 4_000);
    group.bench_function("encode", |b| b.iter(|| black_box(sw.snapshot())));
    let bytes = sw.snapshot();
    group.bench_function("decode", |b| {
        b.iter(|| {
            black_box(
                FairSlidingWindow::<Euclidean>::restore(Euclidean, &bytes).expect("valid snapshot"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_update,
    bench_query,
    bench_oblivious_update,
    bench_snapshot
);
criterion_main!(benches);

//! Criterion micro-benchmarks for the matching substrate (the inner loop
//! of both sequential solvers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairsw_matching::{max_bipartite_matching, max_capacitated_matching};
use std::hint::black_box;

/// Deterministic pseudo-random bipartite graph.
fn graph(n_left: usize, n_right: usize, avg_degree: usize) -> Vec<Vec<usize>> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as usize
    };
    (0..n_left)
        .map(|_| {
            let mut nb: Vec<usize> = (0..avg_degree).map(|_| next() % n_right).collect();
            nb.sort_unstable();
            nb.dedup();
            nb
        })
        .collect()
}

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopcroft_karp");
    for n in [50usize, 200, 800] {
        let adj = graph(n, n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(max_bipartite_matching(n, n, &adj)))
        });
    }
    group.finish();
}

fn bench_capacitated(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacitated");
    // The solver-shaped instance: `k` heads vs 7 colors with budgets.
    for k in [14usize, 28, 56] {
        let caps = vec![k / 7; 7];
        let adj = graph(k, 7, 4);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(max_capacitated_matching(&caps, &adj)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hopcroft_karp, bench_capacitated);
criterion_main!(benches);

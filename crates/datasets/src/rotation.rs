//! Random rigid rotations via Gram–Schmidt orthonormalization.
//!
//! The `rotated` experiment (paper §4.3, Figure 5) embeds 3-dimensional
//! data in up to 15 ambient dimensions through zero-padding followed by a
//! random rotation, then verifies that the algorithm's cost tracks the
//! *intrinsic* dimension. A random orthogonal matrix is obtained by
//! Gram–Schmidt on a matrix of i.i.d. Gaussians (Haar-distributed up to
//! sign, which is irrelevant for distance-preserving purposes).

use crate::rng::{gaussian, seeded};

/// A `d × d` orthogonal matrix, row-major.
#[derive(Clone, Debug)]
pub struct Rotation {
    d: usize,
    rows: Vec<Vec<f64>>,
}

impl Rotation {
    /// Applies the rotation to a `d`-vector.
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.d, "dimension mismatch");
        self.rows
            .iter()
            .map(|row| row.iter().zip(v).map(|(r, x)| r * x).sum())
            .collect()
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.d
    }
}

/// Samples a random `d × d` rotation (deterministic given `seed`).
pub fn random_rotation(d: usize, seed: u64) -> Rotation {
    assert!(d > 0, "dimension must be positive");
    let mut rng = seeded(seed);
    // Retry on (astronomically unlikely) rank deficiency.
    loop {
        let mut rows: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..d).map(|_| gaussian(&mut rng)).collect())
            .collect();
        let mut ok = true;
        for i in 0..d {
            // Subtract projections onto previous rows.
            for j in 0..i {
                let dot: f64 = rows[i].iter().zip(&rows[j]).map(|(a, b)| a * b).sum();
                let prev = rows[j].clone();
                for (x, p) in rows[i].iter_mut().zip(&prev) {
                    *x -= dot * p;
                }
            }
            let norm: f64 = rows[i].iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-9 {
                ok = false;
                break;
            }
            for x in rows[i].iter_mut() {
                *x /= norm;
            }
        }
        if ok {
            return Rotation { d, rows };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn rows_are_orthonormal() {
        let r = random_rotation(6, 42);
        for i in 0..6 {
            for j in 0..6 {
                let d = dot(&r.rows[i], &r.rows[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-9, "rows {i},{j}: {d}");
            }
        }
    }

    #[test]
    fn preserves_distances() {
        let r = random_rotation(5, 7);
        let a = [1.0, -2.0, 3.0, 0.5, 0.0];
        let b = [0.0, 4.0, -1.0, 2.0, 1.0];
        let da: Vec<f64> = r.apply(&a);
        let db: Vec<f64> = r.apply(&b);
        let orig: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let rot: f64 = da
            .iter()
            .zip(&db)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!((orig - rot).abs() < 1e-9);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = random_rotation(4, 99);
        let b = random_rotation(4, 99);
        assert_eq!(a.rows, b.rows);
        let c = random_rotation(4, 100);
        assert_ne!(a.rows, c.rows);
    }

    #[test]
    fn genuinely_mixes_coordinates() {
        // A rotation of the padded e1 axis should spread mass across
        // coordinates (no axis-aligned degenerate rotation).
        let r = random_rotation(8, 5);
        let v = r.apply(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let nonzero = v.iter().filter(|x| x.abs() > 1e-3).count();
        assert!(nonzero >= 4, "rotation too axis-aligned: {v:?}");
    }
}

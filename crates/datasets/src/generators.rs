//! Synthetic dataset generators.
//!
//! * [`blobs`] and [`rotated`] reproduce the paper's §4.3 synthetic
//!   families exactly as described;
//! * [`phones_like`], [`higgs_like`] and [`covtype_like`] are the
//!   offline stand-ins for the three UCI datasets (DESIGN.md §4): they
//!   match the originals' dimensionality, number of colors, color skew,
//!   and order-of-magnitude aspect ratio, which are the only data
//!   properties the algorithms observe.

use crate::rng::{gaussian, gaussian_vec, laplace, seeded, unit_vec};
use crate::rotation::random_rotation;
use fairsw_metric::{Colored, EuclidPoint};

/// A named colored dataset, ready to stream.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Display name (harness output).
    pub name: String,
    /// The points in stream order.
    pub points: Vec<Colored<EuclidPoint>>,
    /// Number of colors `ℓ`.
    pub num_colors: usize,
}

impl Dataset {
    /// Dimensionality of the points (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.points.first().map(|p| p.point.dim()).unwrap_or(0)
    }
}

/// Parameters of the `blobs` family (paper defaults baked in).
#[derive(Clone, Copy, Debug)]
pub struct BlobsParams {
    /// Number of Gaussian components (paper: 21).
    pub components: usize,
    /// Component standard deviation (paper: σ = 2).
    pub sigma: f64,
    /// Number of colors, assigned uniformly (paper: 7).
    pub num_colors: usize,
    /// Side of the cube the component centers are drawn from.
    pub center_box: f64,
}

impl Default for BlobsParams {
    fn default() -> Self {
        BlobsParams {
            components: 21,
            sigma: 2.0,
            num_colors: 7,
            center_box: 100.0,
        }
    }
}

/// The `blobs` datasets of §4.3: a mixture of `components` isotropic
/// `d`-dimensional Gaussians with σ = 2; each point gets a uniformly
/// random color out of 7. Used by Figure 4 (dimensionality sweep,
/// `2 ≤ d ≤ 10`).
pub fn blobs(n: usize, d: usize, params: BlobsParams, seed: u64) -> Dataset {
    assert!(d > 0 && params.components > 0 && params.num_colors > 0);
    let mut rng = seeded(seed);
    let centers: Vec<Vec<f64>> = (0..params.components)
        .map(|_| {
            (0..d)
                .map(|_| rng.random_range(0.0..params.center_box))
                .collect()
        })
        .collect();
    let points = (0..n)
        .map(|_| {
            let c = rng.random_range(0..params.components);
            let coords = gaussian_vec(&mut rng, &centers[c], params.sigma);
            let color = rng.random_range(0..params.num_colors) as u32;
            Colored::new(EuclidPoint::new(coords), color)
        })
        .collect();
    Dataset {
        name: format!("blobs-d{d}"),
        points,
        num_colors: params.num_colors,
    }
}

/// The `rotated` datasets of §4.3: intrinsically 3-dimensional data
/// (the PHONES stand-in) zero-padded to `ambient_dim` coordinates and
/// rigidly rotated. All distances are exactly those of the 3-d original;
/// only the coordinate count changes. Used by Figure 5.
pub fn rotated(n: usize, ambient_dim: usize, seed: u64) -> Dataset {
    assert!(ambient_dim >= 3, "ambient dimension must be ≥ 3");
    let base = phones_like(n, seed);
    let rot = random_rotation(ambient_dim, seed ^ 0x5eed_0000_0000_0001);
    let points = base
        .points
        .into_iter()
        .map(|cp| {
            let mut padded = vec![0.0; ambient_dim];
            padded[..3].copy_from_slice(cp.point.coords());
            Colored::new(EuclidPoint::new(rot.apply(&padded)), cp.color)
        })
        .collect();
    Dataset {
        name: format!("rotated-d{ambient_dim}"),
        points,
        num_colors: base.num_colors,
    }
}

/// PHONES stand-in: 3-d sensor trajectories with 7 activity colors.
///
/// The original is accelerometer positions labelled with user actions
/// (stand, sit, walk, bike, stairs up/down, null) and aspect ratio
/// ≈ 6.4·10⁵. We emulate it with a piecewise random walk: activities
/// switch in segments; each activity has its own step scale and jitter,
/// spanning several orders of magnitude so the global aspect ratio lands
/// near the original's. Activity frequencies are skewed like real usage.
pub fn phones_like(n: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    // (step scale, jitter) per activity; "null" is nearly static, "bike"
    // moves fast — spreading the distance scales widely.
    let profiles: [(f64, f64); 7] = [
        (0.002, 0.001),   // stand
        (0.001, 0.001),   // sit
        (0.4, 0.05),      // walk
        (3.0, 0.3),       // bike
        (0.25, 0.05),     // stairs up
        (0.3, 0.05),      // stairs down
        (0.0005, 0.0005), // null
    ];
    // Skewed activity frequencies (walk/stand dominate).
    let weights = [22u32, 18, 28, 10, 8, 8, 6];
    let wsum: u32 = weights.iter().sum();

    let mut pos = [0.0f64; 3];
    let mut dir = unit_vec(&mut rng, 3);
    let mut activity = 0usize;
    let mut segment_left = 0usize;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        if segment_left == 0 {
            // New activity segment.
            let mut pick = rng.random_range(0..wsum);
            activity = 0;
            for (i, &w) in weights.iter().enumerate() {
                if pick < w {
                    activity = i;
                    break;
                }
                pick -= w;
            }
            segment_left = rng.random_range(80..400usize);
            dir = unit_vec(&mut rng, 3);
        }
        segment_left -= 1;
        let (step, jitter) = profiles[activity];
        // Slowly turning heading keeps trajectories realistic.
        let turn = unit_vec(&mut rng, 3);
        for i in 0..3 {
            dir[i] = 0.95 * dir[i] + 0.05 * turn[i];
        }
        let norm: f64 = dir.iter().map(|x| x * x).sum::<f64>().sqrt();
        for d in dir.iter_mut() {
            *d /= norm.max(1e-12);
        }
        let coords: Vec<f64> = (0..3)
            .map(|i| {
                pos[i] += step * dir[i] + jitter * gaussian(&mut rng);
                pos[i]
            })
            .collect();
        points.push(Colored::new(EuclidPoint::new(coords), activity as u32));
    }
    Dataset {
        name: "phones".to_string(),
        points,
        num_colors: 7,
    }
}

/// HIGGS stand-in: 7-d particle features with 2 colors (signal/noise).
///
/// The original has 11M 7-dimensional points, a near-balanced binary
/// label and aspect ratio ≈ 2.3·10⁴. Its seven *derived* physics features
/// are strongly correlated — the data occupies a low-dimensional manifold
/// inside the 7 coordinates — so we emulate it with a **latent factor
/// model**: a 3-dimensional latent vector per point (heavy Laplace tails
/// produce the rare far outliers behind the aspect ratio), linearly
/// embedded into 7 coordinates via a fixed mixing matrix, plus small
/// ambient noise. Rare near-duplicate readouts pin `dmin` to the scale
/// the 11M-point original reaches through sheer density.
pub fn higgs_like(n: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let d = 7usize;
    let latent = 3usize;
    // Fixed mixing matrix (rows = features, cols = latent factors).
    let mix: Vec<Vec<f64>> = (0..d)
        .map(|_| (0..latent).map(|_| gaussian(&mut rng)).collect())
        .collect();
    // Latent class centers for signal and noise.
    let signal_z = [1.2f64, -0.8, 0.5];
    let noise_z = [-0.6f64, 0.4, -0.9];
    let mut prev: Option<Vec<f64>> = None;
    let points = (0..n)
        .map(|_| {
            let is_signal = rng.random::<f64>() < 0.53; // slight skew, as in HIGGS
                                                        // Rare near-duplicate measurements (repeated detector
                                                        // readouts) give the dataset its tiny dmin, hence its large
                                                        // aspect ratio, mirroring the density of the 11M-point
                                                        // original that a laptop-scale sample cannot reach.
            if let Some(p) = &prev {
                if rng.random::<f64>() < 0.02 {
                    let coords: Vec<f64> =
                        p.iter().map(|&c| c + 5e-4 * gaussian(&mut rng)).collect();
                    prev = Some(coords.clone());
                    return Colored::new(EuclidPoint::new(coords), is_signal as u32);
                }
            }
            let center = if is_signal { &signal_z } else { &noise_z };
            let z: Vec<f64> = center
                .iter()
                .map(|&c| c + 0.7 * gaussian(&mut rng) + laplace(&mut rng, 0.35))
                .collect();
            let coords: Vec<f64> = mix
                .iter()
                .map(|row| {
                    let embedded: f64 = row.iter().zip(&z).map(|(m, zz)| m * zz).sum();
                    embedded + 0.05 * gaussian(&mut rng)
                })
                .collect();
            prev = Some(coords.clone());
            Colored::new(EuclidPoint::new(coords), is_signal as u32)
        })
        .collect();
    Dataset {
        name: "higgs".to_string(),
        points,
        num_colors: 2,
    }
}

/// COVTYPE stand-in: 54-d cartographic features with 7 cover-type colors.
///
/// The original's class distribution is heavily skewed (two types cover
/// ~85% of observations) and its aspect ratio is ≈ 3.1·10³. We emulate
/// it with 7 anisotropic Gaussian clusters in 54 dimensions whose mean
/// separations and in-cluster spreads reproduce that ratio and skew.
pub fn covtype_like(n: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let d = 54usize;
    let ncolors = 7usize;
    // Skewed class weights modeled on COVTYPE (%): 36.5, 48.8, 6.2, 0.5,
    // 1.6, 3.0, 3.5.
    let weights = [365u32, 488, 62, 5, 16, 30, 35];
    let wsum: u32 = weights.iter().sum();
    let centers: Vec<Vec<f64>> = (0..ncolors)
        .map(|_| (0..d).map(|_| 150.0 * gaussian(&mut rng)).collect())
        .collect();
    // Per-class anisotropy: some features vary widely (elevation-like),
    // some are almost binary (soil-type-like).
    let scales: Vec<Vec<f64>> = (0..ncolors)
        .map(|_| (0..d).map(|j| if j < 10 { 8.0 } else { 0.5 }).collect())
        .collect();
    let points = (0..n)
        .map(|_| {
            let mut pick = rng.random_range(0..wsum);
            let mut class = 0usize;
            for (i, &w) in weights.iter().enumerate() {
                if pick < w {
                    class = i;
                    break;
                }
                pick -= w;
            }
            // Cartographic variables are integer-valued in the original;
            // quantizing pins dmin to the unit grid (distinct points are
            // at distance ≥ 1), reproducing COVTYPE's ≈ 3.1e3 aspect
            // ratio without relying on sample density.
            let coords: Vec<f64> = centers[class]
                .iter()
                .zip(&scales[class])
                .map(|(&c, &s)| (c + s * gaussian(&mut rng)).round())
                .collect();
            Colored::new(EuclidPoint::new(coords), class as u32)
        })
        .collect();
    Dataset {
        name: "covtype".to_string(),
        points,
        num_colors: ncolors,
    }
}

/// Parameters of the [`embedding_drift`] family.
#[derive(Clone, Copy, Debug)]
pub struct EmbeddingDriftParams {
    /// Number of colors (one drifting cluster per color).
    pub num_colors: usize,
    /// Tangential Gaussian noise before renormalization.
    pub sigma: f64,
    /// Base angular drift per arriving point (radians along the great
    /// circle); each color drifts at its own multiple of this rate.
    pub drift: f64,
}

impl Default for EmbeddingDriftParams {
    fn default() -> Self {
        EmbeddingDriftParams {
            num_colors: 4,
            sigma: 0.05,
            drift: std::f64::consts::TAU / 8192.0,
        }
    }
}

/// Synthetic embedding stream: unit-norm points from per-color Gaussian
/// clusters whose centers walk along great circles of the unit sphere.
///
/// Models the high-dimensional embedding workloads the projection
/// pipeline targets (`256 ≤ dim ≤ 1024` in the benchmarks): text/image
/// encoders emit L2-normalized vectors whose topic distribution drifts
/// over time. Each color `c` owns an orthonormal pair `(u_c, v_c)`
/// spanning a random 2-plane; its cluster center at stream position `t`
/// is `cos(φ_c(t))·u_c + sin(φ_c(t))·v_c` with the phase advancing at a
/// color-specific rate (`(1 + c) ×` the base drift — drift is
/// *correlated with color*, so windows see colors at different spread).
/// Points add isotropic Gaussian noise `σ` and are renormalized to unit
/// norm. Deterministic given the seed.
pub fn embedding_drift(n: usize, dim: usize, params: EmbeddingDriftParams, seed: u64) -> Dataset {
    assert!(dim >= 4, "embedding dimension must be ≥ 4");
    assert!(params.num_colors > 0, "need at least one color");
    let mut rng = seeded(seed);
    // Per-color orthonormal 2-plane (u, v) via Gram–Schmidt.
    let planes: Vec<(Vec<f64>, Vec<f64>)> = (0..params.num_colors)
        .map(|_| {
            let u = unit_vec(&mut rng, dim);
            loop {
                let w = unit_vec(&mut rng, dim);
                let dot: f64 = u.iter().zip(&w).map(|(a, b)| a * b).sum();
                let v: Vec<f64> = w.iter().zip(&u).map(|(wi, ui)| wi - dot * ui).collect();
                let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 1e-9 {
                    return (u, v.into_iter().map(|x| x / norm).collect());
                }
            }
        })
        .collect();
    let mut phases: Vec<f64> = (0..params.num_colors)
        .map(|_| rng.random_range(0.0..std::f64::consts::TAU))
        .collect();
    let points = (0..n)
        .map(|_| {
            let c = rng.random_range(0..params.num_colors);
            // Color-correlated drift: higher colors wander faster.
            phases[c] += params.drift * (1.0 + c as f64);
            let (u, v) = &planes[c];
            let (s, co) = phases[c].sin_cos();
            let mut coords: Vec<f64> = u
                .iter()
                .zip(v)
                .map(|(ui, vi)| co * ui + s * vi + params.sigma * gaussian(&mut rng))
                .collect();
            let norm: f64 = coords.iter().map(|x| x * x).sum::<f64>().sqrt();
            for x in coords.iter_mut() {
                *x /= norm.max(1e-12);
            }
            Colored::new(EuclidPoint::new(coords), c as u32)
        })
        .collect();
    Dataset {
        name: format!("embeddings-d{dim}"),
        points,
        num_colors: params.num_colors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_metric::{sampled_extremes, Euclidean, Metric};

    fn raw(ds: &Dataset) -> Vec<EuclidPoint> {
        ds.points.iter().map(|c| c.point.clone()).collect()
    }

    #[test]
    fn blobs_shape() {
        let ds = blobs(2000, 5, BlobsParams::default(), 1);
        assert_eq!(ds.points.len(), 2000);
        assert_eq!(ds.dim(), 5);
        let freq = crate::color_frequencies(&ds.points, 7);
        assert!(
            freq.iter().all(|&f| f > 150),
            "colors not uniform: {freq:?}"
        );
    }

    #[test]
    fn blobs_deterministic() {
        let a = blobs(50, 3, BlobsParams::default(), 9);
        let b = blobs(50, 3, BlobsParams::default(), 9);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.point.coords(), y.point.coords());
            assert_eq!(x.color, y.color);
        }
    }

    #[test]
    fn rotated_preserves_distances_and_pads() {
        let base = phones_like(300, 4);
        let rot = rotated(300, 12, 4);
        assert_eq!(rot.dim(), 12);
        let m = Euclidean;
        for i in (0..290).step_by(37) {
            let d0 = m.dist(&base.points[i].point, &base.points[i + 7].point);
            let d1 = m.dist(&rot.points[i].point, &rot.points[i + 7].point);
            assert!((d0 - d1).abs() < 1e-9, "distance changed under rotation");
            assert_eq!(base.points[i].color, rot.points[i].color);
        }
    }

    #[test]
    fn phones_aspect_ratio_order_of_magnitude() {
        let ds = phones_like(30_000, 2);
        let e = sampled_extremes(&Euclidean, &raw(&ds), 200).unwrap();
        let ar = e.aspect_ratio();
        // Target ≈ 6.4e5; accept the right order-of-magnitude band.
        assert!(ar > 1e4 && ar < 1e8, "phones aspect ratio {ar:.3e}");
        assert_eq!(ds.num_colors, 7);
        let freq = crate::color_frequencies(&ds.points, 7);
        assert!(freq.iter().all(|&f| f > 0), "missing activity: {freq:?}");
    }

    #[test]
    fn higgs_aspect_ratio_and_balance() {
        let ds = higgs_like(20_000, 3);
        assert_eq!(ds.dim(), 7);
        let e = sampled_extremes(&Euclidean, &raw(&ds), 200).unwrap();
        let ar = e.aspect_ratio();
        assert!(ar > 1e3 && ar < 1e7, "higgs aspect ratio {ar:.3e}");
        let freq = crate::color_frequencies(&ds.points, 2);
        let ratio = freq[1] as f64 / ds.points.len() as f64;
        assert!(ratio > 0.45 && ratio < 0.6, "signal share {ratio}");
    }

    #[test]
    fn embedding_drift_unit_norm_and_deterministic() {
        let p = EmbeddingDriftParams::default();
        let a = embedding_drift(400, 256, p, 77);
        let b = embedding_drift(400, 256, p, 77);
        assert_eq!(a.dim(), 256);
        assert_eq!(a.num_colors, 4);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.point.coords(), y.point.coords());
            assert_eq!(x.color, y.color);
        }
        for cp in &a.points {
            let norm: f64 = cp.point.coords().iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
        }
        let freq = crate::color_frequencies(&a.points, 4);
        assert!(freq.iter().all(|&f| f > 0), "missing color: {freq:?}");
    }

    #[test]
    fn embedding_drift_centers_actually_drift() {
        // With a brisk drift rate, the early and late per-color means
        // must be far apart on the sphere.
        let p = EmbeddingDriftParams {
            num_colors: 2,
            sigma: 0.02,
            drift: std::f64::consts::TAU / 2000.0,
        };
        let ds = embedding_drift(4000, 64, p, 5);
        let mean = |slice: &[Colored<EuclidPoint>], color: u32| -> Vec<f64> {
            let mut acc = vec![0.0f64; 64];
            let mut cnt = 0usize;
            for cp in slice.iter().filter(|cp| cp.color == color) {
                for (a, &x) in acc.iter_mut().zip(cp.point.coords()) {
                    *a += x;
                }
                cnt += 1;
            }
            acc.into_iter().map(|a| a / cnt.max(1) as f64).collect()
        };
        let early = mean(&ds.points[..800], 1);
        let late = mean(&ds.points[3200..], 1);
        let gap: f64 = early
            .iter()
            .zip(&late)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(gap > 0.3, "cluster did not drift: gap {gap}");
    }

    #[test]
    fn covtype_skew_and_scale() {
        let ds = covtype_like(20_000, 5);
        assert_eq!(ds.dim(), 54);
        let freq = crate::color_frequencies(&ds.points, 7);
        // The two dominant classes must cover most of the data.
        let top2 = freq[0] + freq[1];
        assert!(top2 * 10 > ds.points.len() * 7, "skew lost: {freq:?}");
        assert!(freq.iter().all(|&f| f > 0), "empty class: {freq:?}");
        let e = sampled_extremes(&Euclidean, &raw(&ds), 200).unwrap();
        let ar = e.aspect_ratio();
        assert!(ar > 1e2 && ar < 1e6, "covtype aspect ratio {ar:.3e}");
    }
}

//! Dataset substrate: synthetic generators and loaders for the
//! experiments.
//!
//! The paper evaluates on three UCI datasets (PHONES, HIGGS, COVTYPE) and
//! two synthetic families (`blobs`, `rotated`). This environment has no
//! network access, so the UCI datasets are replaced by synthetic
//! stand-ins that match their dimensionality, number of colors, color
//! skew and target aspect ratio — the only properties the algorithms
//! observe (they interact with data solely through pairwise distances,
//! colors and arrival order). See DESIGN.md §4 for the substitution
//! rationale. Real data can be supplied through [`io::read_csv_points`].
//!
//! All generators are deterministic given a seed.

pub mod generators;
pub mod io;
pub mod rng;
pub mod rotation;

pub use generators::{
    blobs, covtype_like, embedding_drift, higgs_like, phones_like, rotated, BlobsParams, Dataset,
    EmbeddingDriftParams,
};
pub use io::read_csv_points;
pub use rotation::random_rotation;

use fairsw_metric::{Colored, EuclidPoint};

/// Per-color frequencies of a colored dataset (indexed by color).
pub fn color_frequencies(points: &[Colored<EuclidPoint>], num_colors: usize) -> Vec<usize> {
    let mut freq = vec![0usize; num_colors];
    for p in points {
        let c = p.color as usize;
        if c < num_colors {
            freq[c] += 1;
        }
    }
    freq
}

/// The paper's budget rule: `Σ k_i = total_k` with `k_i` proportional to
/// the frequency of color `i` in the dataset, every color getting at
/// least one slot. (The experiments use `total_k = 14` so balanced color
/// distributions get ≥ 2 slots per color.)
///
/// # Panics
/// Panics if `total_k < num_colors` (cannot give every color a slot).
pub fn proportional_capacities(freq: &[usize], total_k: usize) -> Vec<usize> {
    let ncolors = freq.len();
    assert!(ncolors > 0, "need at least one color");
    assert!(
        total_k >= ncolors,
        "total_k {total_k} < number of colors {ncolors}"
    );
    let total: usize = freq.iter().sum();
    if total == 0 {
        // No data: spread evenly.
        let base = total_k / ncolors;
        let mut caps = vec![base; ncolors];
        for item in caps.iter_mut().take(total_k - base * ncolors) {
            *item += 1;
        }
        return caps;
    }
    // Start with floor(share), minimum 1; distribute the remainder to the
    // colors with the largest fractional parts.
    let mut caps: Vec<usize> = freq
        .iter()
        .map(|&f| (((f as f64) / (total as f64)) * total_k as f64).floor() as usize)
        .map(|c| c.max(1))
        .collect();
    // Adjust the sum to exactly total_k.
    loop {
        let s: usize = caps.iter().sum();
        use std::cmp::Ordering;
        match s.cmp(&total_k) {
            Ordering::Equal => break,
            Ordering::Less => {
                // Give to the most under-served color (largest freq/cap).
                let i = (0..ncolors)
                    .max_by(|&a, &b| {
                        let ra = freq[a] as f64 / caps[a] as f64;
                        let rb = freq[b] as f64 / caps[b] as f64;
                        ra.partial_cmp(&rb).expect("finite")
                    })
                    .expect("non-empty");
                caps[i] += 1;
            }
            Ordering::Greater => {
                // Take from the most over-served color with cap > 1.
                let i = (0..ncolors)
                    .filter(|&i| caps[i] > 1)
                    .min_by(|&a, &b| {
                        let ra = freq[a] as f64 / caps[a] as f64;
                        let rb = freq[b] as f64 / caps[b] as f64;
                        ra.partial_cmp(&rb).expect("finite")
                    })
                    .expect("total_k >= ncolors guarantees a donor");
                caps[i] -= 1;
            }
        }
    }
    caps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_count_colors() {
        let pts = vec![
            Colored::new(EuclidPoint::new(vec![0.0]), 0),
            Colored::new(EuclidPoint::new(vec![1.0]), 1),
            Colored::new(EuclidPoint::new(vec![2.0]), 1),
        ];
        assert_eq!(color_frequencies(&pts, 3), vec![1, 2, 0]);
    }

    #[test]
    fn proportional_caps_sum_and_minimum() {
        let caps = proportional_capacities(&[700, 200, 100], 14);
        assert_eq!(caps.iter().sum::<usize>(), 14);
        assert!(caps.iter().all(|&c| c >= 1));
        assert!(caps[0] > caps[1] && caps[1] >= caps[2]);
    }

    #[test]
    fn proportional_caps_rare_color_gets_slot() {
        let caps = proportional_capacities(&[10_000, 1], 14);
        assert_eq!(caps.iter().sum::<usize>(), 14);
        assert_eq!(caps[1], 1);
    }

    #[test]
    fn proportional_caps_empty_data() {
        let caps = proportional_capacities(&[0, 0, 0], 7);
        assert_eq!(caps.iter().sum::<usize>(), 7);
        assert!(caps.iter().all(|&c| c >= 2));
    }

    #[test]
    #[should_panic(expected = "total_k")]
    fn proportional_caps_rejects_small_k() {
        let _ = proportional_capacities(&[1, 1, 1], 2);
    }

    #[test]
    fn balanced_14_over_7_gives_two_each() {
        // The paper chooses 14 so balanced datasets get ≥ 2 per color.
        let caps = proportional_capacities(&[100; 7], 14);
        assert_eq!(caps, vec![2; 7]);
    }
}

//! CSV loading, so the real UCI datasets can be dropped in when network
//! access is available.
//!
//! Format: one point per line, `x_1,x_2,...,x_d,color` — coordinates as
//! floats, the trailing field a non-negative integer color. Lines
//! starting with `#` and blank lines are skipped.

use fairsw_metric::{Colored, EuclidPoint};
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Errors raised while reading a CSV point file.
#[derive(Debug)]
pub enum CsvError {
    /// I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and message).
    Parse { line: usize, msg: String },
    /// Inconsistent dimensionality across lines.
    DimMismatch {
        line: usize,
        expected: usize,
        got: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            CsvError::DimMismatch {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected {expected} coordinates, got {got}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads colored points from any buffered reader.
pub fn read_csv_reader<R: BufRead>(reader: R) -> Result<Vec<Colored<EuclidPoint>>, CsvError> {
    let mut points = Vec::new();
    let mut dim: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(CsvError::Parse {
                line: lineno,
                msg: "need at least one coordinate and a color".into(),
            });
        }
        let (coord_fields, color_field) = fields.split_at(fields.len() - 1);
        let coords: Vec<f64> = coord_fields
            .iter()
            .map(|s| {
                s.parse::<f64>().map_err(|e| CsvError::Parse {
                    line: lineno,
                    msg: format!("bad coordinate {s:?}: {e}"),
                })
            })
            .collect::<Result<_, _>>()?;
        let color: u32 = color_field[0].parse().map_err(|e| CsvError::Parse {
            line: lineno,
            msg: format!("bad color {:?}: {e}", color_field[0]),
        })?;
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(CsvError::DimMismatch {
                    line: lineno,
                    expected: d,
                    got: coords.len(),
                })
            }
            _ => {}
        }
        points.push(Colored::new(EuclidPoint::new(coords), color));
    }
    Ok(points)
}

/// Reads colored points from a CSV file on disk.
pub fn read_csv_points(path: &Path) -> Result<Vec<Colored<EuclidPoint>>, CsvError> {
    let file = std::fs::File::open(path)?;
    read_csv_reader(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valid_input() {
        let data = "# comment\n1.0, 2.0, 0\n\n3.5,-1.25,2\n";
        let pts = read_csv_reader(data.as_bytes()).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].point.coords(), &[1.0, 2.0]);
        assert_eq!(pts[0].color, 0);
        assert_eq!(pts[1].color, 2);
    }

    #[test]
    fn rejects_bad_coordinate() {
        let err = read_csv_reader("1.0,abc,0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_color() {
        let err = read_csv_reader("1.0,2.0,-3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_dim_mismatch() {
        let err = read_csv_reader("1.0,2.0,0\n1.0,2.0,3.0,0\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::DimMismatch {
                line: 2,
                expected: 2,
                got: 3
            }
        ));
    }

    #[test]
    fn rejects_short_line() {
        let err = read_csv_reader("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("fairsw_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pts.csv");
        std::fs::write(&path, "0.5,1.5,1\n2.5,3.5,0\n").unwrap();
        let pts = read_csv_points(&path).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].point.coords(), &[2.5, 3.5]);
        std::fs::remove_file(&path).ok();
    }
}

//! Seeded randomness helpers: Gaussian and heavy-tailed sampling on top
//! of a small in-tree PRNG (the workspace has no external sampling
//! dependency; distribution shaping is implemented here via Box–Muller).
//!
//! The generator is SplitMix64 — tiny, fast, and fully deterministic
//! across platforms, which is what the dataset stand-ins need (every
//! generator is reproducible given a seed).

use std::ops::Range;

/// A deterministic 64-bit PRNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// Creates the generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SeededRng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform sample of the unit interval (`f64` in `[0, 1)`; the
    /// generic shape keeps call sites terse: `rng.random::<f64>()`).
    pub fn random<T: Sample01>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from a half-open range.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        R::sample(range, self)
    }
}

/// Types samplable uniformly from their unit interval.
pub trait Sample01 {
    /// Draws one sample.
    fn sample(rng: &mut SeededRng) -> Self;
}

impl Sample01 for f64 {
    fn sample(rng: &mut SeededRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one sample from the range.
    fn sample(self, rng: &mut SeededRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SeededRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SeededRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // The spans used by the generators are tiny relative to
                // 2^64, so the modulo bias is far below observable.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

int_sample_range!(u32, u64, usize);

/// Deterministic RNG from a seed.
pub fn seeded(seed: u64) -> SeededRng {
    SeededRng::seed_from_u64(seed)
}

/// One standard-normal sample via the Box–Muller transform.
pub fn gaussian(rng: &mut SeededRng) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A d-dimensional isotropic Gaussian sample with standard deviation
/// `sigma` around `center`.
pub fn gaussian_vec(rng: &mut SeededRng, center: &[f64], sigma: f64) -> Vec<f64> {
    center.iter().map(|&c| c + sigma * gaussian(rng)).collect()
}

/// A Laplace (double-exponential) sample with scale `b`: heavier tails
/// than a Gaussian, used by the HIGGS stand-in to stretch its aspect
/// ratio.
pub fn laplace(rng: &mut SeededRng, b: f64) -> f64 {
    let u: f64 = rng.random::<f64>() - 0.5;
    let s = if u >= 0.0 { 1.0 } else { -1.0 };
    -b * s * (1.0 - 2.0 * u.abs()).max(1e-300).ln()
}

/// A uniformly random unit vector in `d` dimensions (Gaussian
/// normalization).
pub fn unit_vec(rng: &mut SeededRng, d: usize) -> Vec<f64> {
    loop {
        let v: Vec<f64> = (0..d).map(|_| gaussian(rng)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            return v.into_iter().map(|x| x / norm).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..10 {
            assert_eq!(gaussian(&mut a), gaussian(&mut b));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = seeded(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn laplace_is_heavier_tailed_than_gaussian() {
        let mut rng = seeded(11);
        let n = 20_000;
        let extreme_laplace = (0..n)
            .filter(|_| laplace(&mut rng, 1.0).abs() > 4.0)
            .count();
        let mut rng = seeded(11);
        let extreme_gauss = (0..n).filter(|_| gaussian(&mut rng).abs() > 4.0).count();
        assert!(extreme_laplace > extreme_gauss);
    }

    #[test]
    fn unit_vec_is_unit() {
        let mut rng = seeded(3);
        for d in [1usize, 2, 8, 54] {
            let v = unit_vec(&mut rng, d);
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = seeded(13);
        for _ in 0..1000 {
            let x = rng.random_range(3.0..7.0f64);
            assert!((3.0..7.0).contains(&x));
            let u = rng.random_range(5usize..9);
            assert!((5..9).contains(&u));
            let w = rng.random_range(0u32..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gaussian_vec_centers_correctly() {
        let mut rng = seeded(5);
        let center = [10.0, -5.0];
        let n = 5000;
        let mut sums = [0.0f64; 2];
        for _ in 0..n {
            let v = gaussian_vec(&mut rng, &center, 0.5);
            sums[0] += v[0];
            sums[1] += v[1];
        }
        assert!((sums[0] / n as f64 - 10.0).abs() < 0.1);
        assert!((sums[1] / n as f64 + 5.0).abs() < 0.1);
    }
}

//! The geometric guess lattice `Γ = {(1+β)^i : i ∈ ℤ}`.
//!
//! The paper instantiates one copy of its data structures per guess
//! `γ = (1+β)^i` with `⌊log_{1+β} dmin⌋ ≤ i ≤ ⌈log_{1+β} dmax⌉`. Both the
//! aspect-ratio-aware and the oblivious variants of the algorithm, plus
//! the windowed extrema structures, need the same level arithmetic, so it
//! lives here once.

/// Geometric lattice with base `1 + β`.
#[derive(Clone, Copy, Debug)]
pub struct Lattice {
    base: f64,
    ln_base: f64,
}

impl Lattice {
    /// Builds the lattice for a given `β > 0`.
    ///
    /// # Panics
    /// Panics if `beta` is not positive and finite — a configuration
    /// error that must surface immediately.
    pub fn new(beta: f64) -> Self {
        assert!(
            beta.is_finite() && beta > 0.0,
            "beta must be positive and finite, got {beta}"
        );
        let base = 1.0 + beta;
        Lattice {
            base,
            ln_base: base.ln(),
        }
    }

    /// The lattice base `1 + β`.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The guess value at `level`: `(1+β)^level`.
    pub fn value(&self, level: i32) -> f64 {
        self.base.powi(level)
    }

    /// The largest level whose value is `≤ d` (i.e. `⌊log_{1+β} d⌋`),
    /// robust to the floating-point boundary: if `d` is within one ulp-ish
    /// of an exact lattice point we snap to it.
    ///
    /// # Panics
    /// Panics if `d` is not positive and finite.
    pub fn level_below(&self, d: f64) -> i32 {
        assert!(
            d.is_finite() && d > 0.0,
            "lattice input must be positive, got {d}"
        );
        let raw = d.ln() / self.ln_base;
        let mut lvl = raw.floor() as i32;
        // Snap: value(lvl+1) may still be <= d due to rounding.
        if self.value(lvl + 1) <= d {
            lvl += 1;
        }
        if self.value(lvl) > d {
            lvl -= 1;
        }
        lvl
    }

    /// The smallest level whose value is `≥ d` (i.e. `⌈log_{1+β} d⌉`).
    pub fn level_above(&self, d: f64) -> i32 {
        let below = self.level_below(d);
        if self.value(below) >= d {
            below
        } else {
            below + 1
        }
    }

    /// The inclusive level range spanning `[dmin, dmax]`, mirroring the
    /// paper's `Γ` definition.
    pub fn span(&self, dmin: f64, dmax: f64) -> std::ops::RangeInclusive<i32> {
        assert!(dmin <= dmax, "dmin {dmin} > dmax {dmax}");
        self.level_below(dmin)..=self.level_above(dmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_powers_snap() {
        let l = Lattice::new(1.0); // base 2
        assert_eq!(l.level_below(8.0), 3);
        assert_eq!(l.level_above(8.0), 3);
        assert_eq!(l.level_below(9.0), 3);
        assert_eq!(l.level_above(9.0), 4);
        assert_eq!(l.level_below(0.5), -1);
    }

    #[test]
    fn span_matches_paper_definition() {
        let l = Lattice::new(2.0); // base 3, the experiments' β
        let span = l.span(1.0, 100.0);
        assert_eq!(*span.start(), 0);
        // 3^4 = 81 < 100 <= 3^5: level_above(100) = 5.
        assert_eq!(*span.end(), 5);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn rejects_bad_beta() {
        let _ = Lattice::new(0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_bad_input() {
        let l = Lattice::new(1.0);
        let _ = l.level_below(0.0);
    }

    proptest! {
        #[test]
        fn level_brackets_value(
            beta in 0.1..4.0f64,
            d in 1e-9..1e12f64,
        ) {
            let l = Lattice::new(beta);
            let lo = l.level_below(d);
            let hi = l.level_above(d);
            prop_assert!(l.value(lo) <= d * (1.0 + 1e-12));
            prop_assert!(l.value(hi) >= d * (1.0 - 1e-12));
            prop_assert!(hi - lo <= 1);
        }

        #[test]
        fn levels_are_monotone(
            beta in 0.1..4.0f64,
            a in 1e-6..1e6f64,
            b in 1e-6..1e6f64,
        ) {
            let l = Lattice::new(beta);
            if a <= b {
                prop_assert!(l.level_below(a) <= l.level_below(b));
            } else {
                prop_assert!(l.level_below(b) <= l.level_below(a));
            }
        }
    }
}

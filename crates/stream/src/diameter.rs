//! Sliding-window diameter estimation with rotating anchors.
//!
//! The aspect-ratio-oblivious variant of the algorithm (`OursOblivious`
//! in the paper's experiments) must bound the guess range using estimates
//! of the *current window's* distance scales instead of stream-global
//! `dmin`/`dmax`. The paper adopts the estimator machinery of Pellizzoni
//! et al. \[8\]; we implement a rotating-anchor scheme with the same
//! interface and constant-factor guarantees (DESIGN.md §4):
//!
//! * **Upper bound.** Fix an anchor point `a` that arrived no later than
//!   the start of the current window and track
//!   `A = max_{p ∈ W} d(p, a)` (a windowed maximum). By the triangle
//!   inequality the window diameter is at most `2A`. To keep the anchor
//!   "old enough" while following stream drift, anchors rotate every `n`
//!   steps and two estimators are kept alive: the *previous* epoch's
//!   anchor has, by construction, observed every point of the current
//!   window.
//! * **Lower bound.** The windowed maximum of consecutive-arrival
//!   distances `d(p_t, p_{t-1})` — both endpoints active — is a valid
//!   diameter lower bound (any active pair's distance is).
//!
//! Windowed maxima are lattice-quantized ([`crate::windowed`]), so the
//! whole estimator stores `O(log Δ)` scalars plus three anchor points.

use crate::lattice::Lattice;
use crate::windowed::WindowedMaxLattice;
use fairsw_metric::{CoresetView, Metric};

/// One anchored estimator: the anchor point plus the windowed maximum of
/// distances from arrivals to the anchor.
#[derive(Clone, Debug)]
struct Anchored<P> {
    anchor: P,
    /// Time the anchor was installed; arrivals since then are covered.
    since: u64,
    dist_max: WindowedMaxLattice,
}

/// Sliding-window diameter estimator. Feed every arrival via
/// [`DiameterEstimator::push`]; read [`upper`](DiameterEstimator::upper) /
/// [`lower`](DiameterEstimator::lower) at any time.
#[derive(Clone, Debug)]
pub struct DiameterEstimator<M: Metric> {
    metric: M,
    lattice: Lattice,
    window: u64,
    /// Estimator anchored in the previous epoch: covers the whole window.
    prev: Option<Anchored<M::Point>>,
    /// Estimator anchored in the current epoch (still warming up).
    cur: Option<Anchored<M::Point>>,
    /// Windowed max of consecutive-arrival distances (lower bound).
    consecutive_max: WindowedMaxLattice,
    last_point: Option<M::Point>,
    now: u64,
    /// The live anchors (`prev` then `cur`), staged once per rotation so
    /// every arrival's anchor distances run through one batched
    /// [`Metric::dist_one_to_many`] kernel call instead of per-anchor
    /// pointer-chasing `dist` calls. Pure scratch — rebuilt on rotation,
    /// never semantic state.
    anchor_view: CoresetView<M::Point>,
    /// Kernel output for the (at most two) anchor distances.
    anchor_dist: Vec<f64>,
}

impl<M: Metric> DiameterEstimator<M> {
    /// Creates an estimator for windows of `window` arrivals, quantizing
    /// on `lattice`.
    pub fn new(metric: M, lattice: Lattice, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        DiameterEstimator {
            metric,
            lattice,
            window,
            prev: None,
            cur: None,
            // Consecutive pairs stay jointly active for window-1 steps;
            // shorten the deque window accordingly (min length 1).
            consecutive_max: WindowedMaxLattice::new(lattice, window.max(2) - 1),
            last_point: None,
            now: 0,
            anchor_view: CoresetView::new(),
            anchor_dist: Vec::new(),
        }
    }

    /// Restages the live anchors (`prev` then `cur`, matching the push
    /// order below) into the columnar view. Called on every rotation.
    fn restage_anchors(&mut self) {
        let anchors = [self.prev.as_ref(), self.cur.as_ref()];
        self.anchor_view.gather(
            &self.metric,
            anchors.into_iter().flatten().map(|a| &a.anchor),
        );
        self.anchor_dist.clear();
        self.anchor_dist.resize(self.anchor_view.len(), 0.0);
    }

    /// Observes the arrival at time `t` (strictly increasing).
    pub fn push(&mut self, t: u64, p: &M::Point) {
        debug_assert!(t > self.now, "times must be strictly increasing");
        self.now = t;

        // Lower bound stream: distance to previous arrival.
        if let Some(last) = &self.last_point {
            let d = self.metric.dist(last, p);
            self.consecutive_max.push(t, d);
        } else {
            self.consecutive_max.expire(t);
        }
        self.last_point = Some(p.clone());

        // Epoch rotation: a fresh anchor every `window` arrivals. The
        // outgoing `cur` (anchored within the last epoch) becomes `prev`:
        // it has seen every arrival of any window that starts after now.
        let need_rotate = match &self.cur {
            None => true,
            Some(a) => t >= a.since + self.window,
        };
        if need_rotate {
            let fresh = Anchored {
                anchor: p.clone(),
                since: t,
                dist_max: WindowedMaxLattice::new(self.lattice, self.window),
            };
            self.prev = self.cur.take().or(Some(fresh.clone_for_prev()));
            self.cur = Some(fresh);
            self.restage_anchors();
        }

        // One batched kernel call covers both anchors (bit-identical to
        // per-anchor scalar `dist`; anchors are staged in `prev`, `cur`
        // order, matching the windowed-max push order).
        self.metric
            .dist_one_to_many(p, &self.anchor_view, &mut self.anchor_dist);
        for (a, &d) in [self.prev.as_mut(), self.cur.as_mut()]
            .into_iter()
            .flatten()
            .zip(&self.anchor_dist)
        {
            a.dist_max.push(t, d);
        }
    }

    /// A window-diameter upper bound: `2 · (1+β) · max_active d(p, a)`
    /// for the previous-epoch anchor `a` (the `(1+β)` undoes the
    /// quantization floor). Returns `None` before the first arrival.
    pub fn upper(&self) -> Option<f64> {
        let a = self.prev.as_ref().or(self.cur.as_ref())?;
        match a.dist_max.max() {
            Some(m) => Some(2.0 * self.lattice.base() * m),
            // All window points coincide with the anchor.
            None => Some(0.0),
        }
    }

    /// A window-diameter lower bound from consecutive-arrival distances
    /// (0 when fewer than two points have been seen or all consecutive
    /// pairs coincide).
    pub fn lower(&self) -> f64 {
        self.consecutive_max.max().unwrap_or(0.0)
    }

    /// Number of stored points (anchors + last point) — the estimator's
    /// point-memory cost for the accounting experiments.
    pub fn stored_points(&self) -> usize {
        self.prev.is_some() as usize
            + self.cur.is_some() as usize
            + self.last_point.is_some() as usize
    }

    /// Heap bytes of the stored points — the estimator's contribution to
    /// the byte-level memory accounting (these points are owned here,
    /// outside any interned arena).
    pub fn payload_bytes(&self) -> usize {
        use fairsw_metric::PointFootprint;
        self.prev
            .iter()
            .chain(self.cur.iter())
            .map(|a| a.anchor.payload_bytes())
            .sum::<usize>()
            + self
                .last_point
                .as_ref()
                .map(|p| p.payload_bytes())
                .unwrap_or(0)
    }
}

impl<P: Clone> Anchored<P> {
    fn clone_for_prev(&self) -> Self {
        Anchored {
            anchor: self.anchor.clone(),
            since: self.since,
            dist_max: self.dist_max.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_metric::{EuclidPoint, Euclidean};
    use proptest::prelude::*;

    fn p(x: f64) -> EuclidPoint {
        EuclidPoint::new(vec![x])
    }

    /// Exact diameter of the last `w` values.
    fn exact_diam(values: &[f64], w: usize) -> f64 {
        let start = values.len().saturating_sub(w);
        let win = &values[start..];
        let lo = win.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = win.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }

    #[test]
    fn single_point_bounds() {
        let mut est = DiameterEstimator::new(Euclidean, Lattice::new(1.0), 5);
        est.push(1, &p(7.0));
        assert_eq!(est.upper(), Some(0.0));
        assert_eq!(est.lower(), 0.0);
    }

    #[test]
    fn two_points() {
        let mut est = DiameterEstimator::new(Euclidean, Lattice::new(1.0), 5);
        est.push(1, &p(0.0));
        est.push(2, &p(10.0));
        assert!(est.upper().unwrap() >= 10.0);
        assert!(est.lower() >= 5.0); // quantized floor of 10 at base 2 is 8
        assert!(est.lower() <= 10.0);
    }

    #[test]
    fn drift_does_not_inflate_upper_forever() {
        // A stream drifting linearly: the window diameter stays ~w·step;
        // a fixed first-point anchor would report the full drift. The
        // rotating anchor must stay within a constant factor.
        let w = 50u64;
        let mut est = DiameterEstimator::new(Euclidean, Lattice::new(1.0), w);
        let mut t = 0;
        for i in 0..2000 {
            t += 1;
            est.push(t, &p(i as f64));
        }
        let true_diam = (w - 1) as f64;
        let up = est.upper().unwrap();
        assert!(up >= true_diam, "upper {up} below true {true_diam}");
        // Anchor is at most 2 epochs (2w steps) old: distance from anchor
        // to window points <= 2w; upper <= 2*(1+β)*2w = 8w.
        assert!(up <= 8.0 * w as f64, "upper {up} too loose");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn bounds_bracket_true_diameter(
            values in proptest::collection::vec(-1e3..1e3f64, 2..120),
            w in 2usize..20,
        ) {
            let mut est = DiameterEstimator::new(
                Euclidean, Lattice::new(1.0), w as u64);
            for (i, &v) in values.iter().enumerate() {
                est.push(i as u64 + 1, &p(v));
                let d = exact_diam(&values[..=i], w);
                let up = est.upper().expect("pushed");
                let lo = est.lower();
                prop_assert!(up >= d - 1e-9, "upper {up} < true {d}");
                prop_assert!(lo <= d + 1e-9, "lower {lo} > true {d}");
            }
        }
    }
}

//! An exact sliding-window buffer.
//!
//! The sequential baselines of the evaluation ("run ChenEtAl / Jones on
//! all points of the current window") need the window itself; the
//! streaming algorithm's tests need it as ground truth for the coverage
//! invariants of Lemma 1. This is the paper's baseline memory cost: `n`
//! points, linear in the window length.

use fairsw_metric::Colored;
use std::collections::VecDeque;

/// A FIFO buffer holding exactly the last `n` colored points.
#[derive(Clone, Debug)]
pub struct ExactWindow<P> {
    capacity: usize,
    buf: VecDeque<Colored<P>>,
}

impl<P: Clone> ExactWindow<P> {
    /// Creates an empty window of capacity `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "window capacity must be positive");
        ExactWindow {
            capacity: n,
            buf: VecDeque::with_capacity(n),
        }
    }

    /// Pushes a new arrival, evicting the expired point when full.
    /// Returns the evicted point, if any.
    pub fn push(&mut self, p: Colored<P>) -> Option<Colored<P>> {
        let evicted = if self.buf.len() == self.capacity {
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(p);
        evicted
    }

    /// The points currently in the window, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &Colored<P>> {
        self.buf.iter()
    }

    /// Collects the window into a `Vec` (needed by the slice-based
    /// sequential solver interface).
    pub fn to_vec(&self) -> Vec<Colored<P>> {
        self.buf.iter().cloned().collect()
    }

    /// Number of points currently held (= memory cost in points).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity `n`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the window has filled up to capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsw_metric::EuclidPoint;

    fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
        Colored::new(EuclidPoint::new(vec![x]), c)
    }

    #[test]
    fn fifo_eviction() {
        let mut w = ExactWindow::new(2);
        assert!(w.push(cp(1.0, 0)).is_none());
        assert!(!w.is_full());
        assert!(w.push(cp(2.0, 0)).is_none());
        assert!(w.is_full());
        let ev = w.push(cp(3.0, 1)).expect("eviction");
        assert_eq!(ev.point.coords(), &[1.0]);
        assert_eq!(w.len(), 2);
        let xs: Vec<f64> = w.points().map(|p| p.point.coords()[0]).collect();
        assert_eq!(xs, vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ExactWindow::<EuclidPoint>::new(0);
    }

    #[test]
    fn to_vec_preserves_order_and_colors() {
        let mut w = ExactWindow::new(3);
        for i in 0..5 {
            w.push(cp(i as f64, i as u32 % 2));
        }
        let v = w.to_vec();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].point.coords(), &[2.0]);
        assert_eq!(v[2].color, 0);
    }
}

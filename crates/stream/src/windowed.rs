//! Sliding-window extrema over lattice-quantized values.
//!
//! A classical monotone deque computes windowed maxima in O(1) amortized
//! time but can hold Θ(n) entries. For sliding-window *scale estimation*
//! we only need the extremum up to the lattice factor `(1+β)` anyway, so
//! we quantize values to lattice levels before insertion: the deque then
//! holds at most one entry per distinct level, bounding memory by
//! `O(log_{1+β} Δ)` — the same budget as everything else in the paper's
//! data structures.

use crate::lattice::Lattice;
use std::collections::VecDeque;

/// Sliding-window maximum over quantized positive values.
///
/// `max()` returns a value `m` with `true_window_max / (1+β) < m ≤
/// true_window_max` (the level-floor of the true maximum).
#[derive(Clone, Debug)]
pub struct WindowedMaxLattice {
    lattice: Lattice,
    window: u64,
    /// Entries `(arrival_time, level)` with strictly decreasing levels
    /// from front to back... front holds the current maximum.
    deque: VecDeque<(u64, i32)>,
    /// Number of zero-valued observations currently ignored (zeros carry
    /// no scale information); kept for diagnostics.
    zeros_seen: u64,
}

impl WindowedMaxLattice {
    /// Creates a windowed maximum of length `window` (in arrivals) over
    /// lattice `lattice`.
    pub fn new(lattice: Lattice, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        WindowedMaxLattice {
            lattice,
            window,
            deque: VecDeque::new(),
            zeros_seen: 0,
        }
    }

    /// Observes `value` at time `t` (times must be non-decreasing) and
    /// expires entries that left the window. Zero/negative values are
    /// ignored — they carry no scale information.
    pub fn push(&mut self, t: u64, value: f64) {
        self.expire(t);
        let positive = value.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive || !value.is_finite() {
            self.zeros_seen += 1;
            return;
        }
        let level = self.lattice.level_below(value);
        // Pop entries with level <= new level: they can never be the max
        // again (older AND not larger).
        while let Some(&(_, back_level)) = self.deque.back() {
            if back_level <= level {
                self.deque.pop_back();
            } else {
                break;
            }
        }
        self.deque.push_back((t, level));
    }

    /// Drops entries that fell out of the window as of time `now`.
    pub fn expire(&mut self, now: u64) {
        while let Some(&(t, _)) = self.deque.front() {
            if t + self.window <= now {
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// The quantized window maximum (the lattice value of the max level),
    /// or `None` if no positive value is in the window.
    pub fn max(&self) -> Option<f64> {
        self.deque.front().map(|&(_, lvl)| self.lattice.value(lvl))
    }

    /// Number of deque entries (bounded by the number of distinct lattice
    /// levels in the window).
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Whether no positive value is currently tracked.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }
}

/// Sliding-window minimum over quantized positive values; mirror image of
/// [`WindowedMaxLattice`]. `min()` returns the level-floor of the true
/// window minimum (so `min() ≤ true_min < min()·(1+β)`).
#[derive(Clone, Debug)]
pub struct WindowedMinLattice {
    lattice: Lattice,
    window: u64,
    /// Entries `(arrival_time, level)` with strictly increasing levels.
    deque: VecDeque<(u64, i32)>,
}

impl WindowedMinLattice {
    /// Creates a windowed minimum of length `window` over `lattice`.
    pub fn new(lattice: Lattice, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        WindowedMinLattice {
            lattice,
            window,
            deque: VecDeque::new(),
        }
    }

    /// Observes `value` at time `t`; ignores non-positive values.
    pub fn push(&mut self, t: u64, value: f64) {
        self.expire(t);
        let positive = value.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive || !value.is_finite() {
            return;
        }
        let level = self.lattice.level_below(value);
        while let Some(&(_, back_level)) = self.deque.back() {
            if back_level >= level {
                self.deque.pop_back();
            } else {
                break;
            }
        }
        self.deque.push_back((t, level));
    }

    /// Drops entries that fell out of the window as of time `now`.
    pub fn expire(&mut self, now: u64) {
        while let Some(&(t, _)) = self.deque.front() {
            if t + self.window <= now {
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// The quantized window minimum, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.deque.front().map(|&(_, lvl)| self.lattice.value(lvl))
    }

    /// Number of deque entries.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Whether no positive value is currently tracked.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lat() -> Lattice {
        Lattice::new(1.0) // base 2
    }

    #[test]
    fn max_tracks_window() {
        let mut w = WindowedMaxLattice::new(lat(), 3);
        w.push(1, 8.0);
        w.push(2, 2.0);
        w.push(3, 2.0);
        assert_eq!(w.max(), Some(8.0));
        // t=4: entry from t=1 expires.
        w.push(4, 2.0);
        assert_eq!(w.max(), Some(2.0));
    }

    #[test]
    fn max_quantizes_down() {
        let mut w = WindowedMaxLattice::new(lat(), 10);
        w.push(1, 9.0); // level 3 (8 <= 9 < 16)
        assert_eq!(w.max(), Some(8.0));
    }

    #[test]
    fn zeros_are_ignored() {
        let mut w = WindowedMaxLattice::new(lat(), 10);
        w.push(1, 0.0);
        assert_eq!(w.max(), None);
        assert!(w.is_empty());
        w.push(2, 4.0);
        assert_eq!(w.max(), Some(4.0));
    }

    #[test]
    fn min_tracks_window() {
        let mut w = WindowedMinLattice::new(lat(), 3);
        w.push(1, 1.0);
        w.push(2, 16.0);
        w.push(3, 16.0);
        assert_eq!(w.min(), Some(1.0));
        w.push(4, 16.0);
        assert_eq!(w.min(), Some(16.0));
    }

    proptest! {
        #[test]
        fn max_is_within_lattice_factor_of_true(
            values in proptest::collection::vec(0.01..1e6f64, 1..60),
            window in 1u64..20,
        ) {
            let l = Lattice::new(0.5);
            let mut w = WindowedMaxLattice::new(l, window);
            for (i, &v) in values.iter().enumerate() {
                let t = i as u64 + 1;
                w.push(t, v);
                let start = t.saturating_sub(window - 1).max(1);
                let true_max = values[(start as usize - 1)..=i]
                    .iter()
                    .cloned()
                    .fold(0.0f64, f64::max);
                let got = w.max().expect("non-empty window");
                prop_assert!(got <= true_max * (1.0 + 1e-9));
                prop_assert!(got > true_max / 1.5 - 1e-12,
                    "got {got} true {true_max}");
                // Memory bound: one entry per distinct level in range.
                prop_assert!(w.len() <= 60);
            }
        }

        #[test]
        fn min_is_within_lattice_factor_of_true(
            values in proptest::collection::vec(0.01..1e6f64, 1..60),
            window in 1u64..20,
        ) {
            let l = Lattice::new(0.5);
            let mut w = WindowedMinLattice::new(l, window);
            for (i, &v) in values.iter().enumerate() {
                let t = i as u64 + 1;
                w.push(t, v);
                let start = t.saturating_sub(window - 1).max(1);
                let true_min = values[(start as usize - 1)..=i]
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                let got = w.min().expect("non-empty window");
                prop_assert!(got <= true_min * (1.0 + 1e-9));
                prop_assert!(got > true_min / 1.5 - 1e-12);
            }
        }
    }
}

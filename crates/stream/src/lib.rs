//! Streaming / sliding-window substrate.
//!
//! Provides the machinery the core algorithm and the experiment harness
//! share:
//!
//! * [`lattice`] — the geometric guess lattice `Γ = {(1+β)^i}` of the
//!   paper, as reusable level arithmetic;
//! * [`windowed`] — sliding-window maxima/minima over *lattice-quantized*
//!   values with memory `O(log Δ)` instead of `O(n)` (monotone deques
//!   whose entries are distinct quantization levels);
//! * [`diameter`] — a sliding-window diameter estimator with rotating
//!   anchors, used by the aspect-ratio-oblivious variant of the algorithm
//!   to bound the guess range from above (DESIGN.md §4);
//! * [`window`] — an exact window buffer, used by the full-window
//!   sequential baselines and by tests as ground truth.

pub mod diameter;
pub mod lattice;
pub mod window;
pub mod windowed;

pub use diameter::DiameterEstimator;
pub use lattice::Lattice;
pub use window::ExactWindow;
pub use windowed::{WindowedMaxLattice, WindowedMinLattice};

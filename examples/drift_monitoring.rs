//! Concept drift: why *sliding windows* and not insertion-only streaming.
//!
//! Run with: `cargo run --release --example drift_monitoring`
//!
//! A sensor fleet reports positions from three sites. Mid-stream, site A
//! is decommissioned and site D comes online far away. An insertion-only
//! summary keeps representing dead site A forever; the sliding-window
//! summary forgets it as soon as it leaves the window. We demonstrate by
//! tracking where the returned centers live before and after the change,
//! using the scale-oblivious variant (field data — nobody knows dmin/dmax
//! up front), driven through the unified `WindowEngine` API.

use fairsw::prelude::*;

/// Site layouts: (x, y) centers of the active sites per phase.
const PHASE1: [(f64, f64); 3] = [(0.0, 0.0), (80.0, 10.0), (40.0, 70.0)]; // A, B, C
const PHASE2: [(f64, f64); 3] = [(80.0, 10.0), (40.0, 70.0), (160.0, 160.0)]; // B, C, D

fn site_point(sites: &[(f64, f64); 3], i: u64) -> (Vec<f64>, u32) {
    let s = (i % 3) as usize;
    let (cx, cy) = sites[s];
    let jx = ((i as f64) * 0.618_033_988_7).fract() * 4.0 - 2.0;
    let jy = ((i as f64) * 0.324_717_957_2).fract() * 4.0 - 2.0;
    // Color = sensor vendor (2 vendors), independent of site.
    ((vec![cx + jx, cy + jy]), (i % 2) as u32)
}

fn nearest_site(p: &EuclidPoint, sites: &[(f64, f64)]) -> usize {
    let m = Euclidean;
    sites
        .iter()
        .enumerate()
        .min_by(|(_, &(ax, ay)), (_, &(bx, by))| {
            let da = m.dist(p, &EuclidPoint::new(vec![ax, ay]));
            let db = m.dist(p, &EuclidPoint::new(vec![bx, by]));
            da.partial_cmp(&db).expect("finite")
        })
        .map(|(i, _)| i)
        .expect("non-empty sites")
}

fn main() {
    let window = 3_000usize;
    let mut sw = EngineBuilder::new()
        .window_size(window)
        .capacities(vec![2, 2]) // ≤ 2 centers per vendor
        .delta(1.0)
        .oblivious()
        .build(Euclidean)
        .expect("valid configuration");

    let all_sites = [(0.0, 0.0), (80.0, 10.0), (40.0, 70.0), (160.0, 160.0)];
    let names = ["A", "B", "C", "D"];

    let phase_len = 6_000u64;
    for i in 0..2 * phase_len {
        let sites = if i < phase_len { &PHASE1 } else { &PHASE2 };
        let (coords, color) = site_point(sites, i);
        sw.insert(Colored::new(EuclidPoint::new(coords), color));

        if i % 2_000 == 1_999 {
            let sol = sw.query().expect("non-empty window");
            let mut counts = [0usize; 4];
            for c in &sol.centers {
                counts[nearest_site(&c.point, &all_sites)] += 1;
            }
            let placed: Vec<String> = counts
                .iter()
                .zip(names)
                .filter(|(&c, _)| c > 0)
                .map(|(&c, n)| format!("{n}×{c}"))
                .collect();
            println!(
                "t={:>6}  phase {}  centers at sites: {:<16} (stored {} pts, {} guesses)",
                i + 1,
                if i < phase_len { 1 } else { 2 },
                placed.join(" "),
                sw.stored_points(),
                sw.num_guesses(),
            );
        }
    }
    println!(
        "\nAfter the window slid past the change-over, site A no longer \
         receives a center and site D does — the summary follows the drift."
    );
}

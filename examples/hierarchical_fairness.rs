//! Hierarchical (laminar) fairness over a sliding window.
//!
//! Run with: `cargo run --release --example hierarchical_fairness`
//!
//! Per-color budgets cannot express policies like "at most 2 centers per
//! minority group AND at most 3 minority centers overall". That is a
//! *laminar* matroid — nested group caps — and the generalized
//! [`MatroidSlidingWindow`] handles it with the same streaming machinery
//! and guarantees (the fairness constraint of the paper is its partition
//! special case; see `crates/core/src/matroid_window.rs`).
//!
//! Scenario: a hiring pipeline streams candidate profiles from four
//! sources (colors 0,1 = minority groups, 2,3 = majority groups). Policy:
//! ≤ 2 centers per single group, ≤ 3 from the minority groups combined,
//! ≤ 6 overall.

use fairsw::prelude::*;

fn candidate(i: u64) -> Colored<EuclidPoint> {
    // Four skill-space clusters, one per source; minorities are rarer.
    let color = match i % 10 {
        0 => 0u32,  // minority A, 10%
        1 | 2 => 1, // minority B, 20%
        3..=6 => 2, // majority C, 40%
        _ => 3,     // majority D, 30%
    };
    let (cx, cy) = [(0.0, 0.0), (60.0, 10.0), (20.0, 70.0), (80.0, 70.0)][color as usize];
    let jx = ((i as f64) * 0.618_033_988_7).fract() * 8.0;
    let jy = ((i as f64) * 0.324_717_957_2).fract() * 8.0;
    Colored::new(EuclidPoint::new(vec![cx + jx, cy + jy]), color)
}

fn main() {
    let policy = LaminarMatroid::new(vec![
        Group::new(vec![0], 2),
        Group::new(vec![1], 2),
        Group::new(vec![2], 2),
        Group::new(vec![3], 2),
        Group::new(vec![0, 1], 3),       // minorities combined
        Group::new(vec![0, 1, 2, 3], 6), // total committee size
    ])
    .expect("nested groups are laminar");

    let mut sw = EngineBuilder::new()
        .window_size(2_000)
        .beta(2.0)
        .delta(1.0)
        .matroid(policy.clone(), 0.05, 500.0)
        .build(Euclidean)
        .expect("valid configuration");

    for i in 0..6_000u64 {
        sw.insert(candidate(i));
        if i % 2_000 == 1_999 {
            let sol = sw.query().expect("non-empty window");
            let mut per_color = [0usize; 4];
            for c in &sol.centers {
                per_color[c.color as usize] += 1;
            }
            let minority = per_color[0] + per_color[1];
            println!(
                "t={:>5}  committee {:?} (minority {minority}/3)  radius {:.1}  \
                 coreset {} pts  stored {} pts",
                i + 1,
                per_color,
                sol.coreset_radius,
                sol.coreset_size,
                sw.stored_points(),
            );
            assert!(
                policy.colors_independent(sol.centers.iter().map(|c| c.color)),
                "policy violated"
            );
        }
    }
    println!(
        "\nEvery committee respected the nested caps (≤2 per group, ≤3 \
         minorities, ≤6 total) while summarizing only the current window."
    );
}

//! Robust fair center in sliding windows: tolerating sensor glitches.
//!
//! Run with: `cargo run --release --example robust_outliers`
//!
//! A telemetry stream with two sites occasionally emits corrupted
//! readings (coordinates off by orders of magnitude). The plain sliding-
//! window summary is dragged toward the glitches — its radius explodes —
//! while the robust variant (the paper's "future work" extension,
//! implemented per the robust k-center / robust matroid-center recipes it
//! cites) discards up to `z` outliers per window and keeps reporting the
//! true site geometry.

use fairsw::prelude::*;

fn reading(i: u64) -> Colored<EuclidPoint> {
    let color = (i % 2) as u32;
    if i.is_multiple_of(211) && i > 0 {
        // Corrupted reading: a wild coordinate.
        return Colored::new(EuclidPoint::new(vec![9e5 + i as f64, -7e5]), color);
    }
    let base = if color == 0 {
        (0.0, 0.0)
    } else {
        (120.0, 40.0)
    };
    let jx = ((i as f64) * 0.618_033_988_7).fract() * 5.0;
    let jy = ((i as f64) * 0.324_717_957_2).fract() * 5.0;
    Colored::new(EuclidPoint::new(vec![base.0 + jx, base.1 + jy]), color)
}

fn main() {
    let window = 2_000usize;
    let mk_engine = || {
        EngineBuilder::new()
            .window_size(window)
            .capacities(vec![2, 2])
            .delta(1.0)
    };

    let mut plain = mk_engine()
        .fixed(0.01, 3e6)
        .build(Euclidean)
        .expect("scales");
    // Tolerate up to 12 outliers per window (one glitch every 211 steps
    // puts ~10 in a 2000-point window).
    let mut robust = mk_engine()
        .robust(12, 0.01, 3e6)
        .build(Euclidean)
        .expect("scales");

    for i in 0..8_000u64 {
        let p = reading(i);
        plain.insert(p.clone());
        robust.insert(p);

        if i % 2_000 == 1_999 {
            let ps = plain.query().expect("non-empty");
            let rs = robust.query().expect("non-empty");
            println!(
                "t={:>5}  plain radius {:>12.1} (γ̂={:<9.1})   robust radius {:>8.1} \
                 (γ̂={:<7.1} outliers discarded: {})",
                i + 1,
                ps.coreset_radius,
                ps.guess,
                rs.coreset_radius,
                rs.guess,
                rs.num_outliers(),
            );
        }
    }
    println!(
        "\nThe plain summary must cover the glitches, inflating its radius by \
         orders of magnitude; the robust summary prices them out."
    );
}

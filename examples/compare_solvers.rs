//! Sequential solver shoot-out on one window snapshot.
//!
//! Run with: `cargo run --release --example compare_solvers`
//!
//! Takes one window of the COVTYPE stand-in and runs all three offline
//! fair-center algorithms on it, printing radius and wall time — a
//! miniature of the paper's baseline comparison (ChenEtAl is the most
//! accurate and by far the slowest; Jones is the practical choice;
//! Kleindessner-style greedy is fastest with the weakest guarantee).

use fairsw::prelude::*;
use fairsw_datasets::{color_frequencies, covtype_like, proportional_capacities};
use std::time::Instant;

fn main() {
    let n = 1_500usize;
    let ds = covtype_like(n, 42);
    let caps = proportional_capacities(&color_frequencies(&ds.points, ds.num_colors), 14);
    let inst = Instance::new(&Euclidean, &ds.points, &caps);
    println!(
        "instance: {} points, {} dims, caps {:?}",
        n,
        ds.points[0].point.dim(),
        caps
    );

    type SolverFn<'a> = Box<dyn Fn() -> FairSolution<EuclidPoint> + 'a>;
    let solvers: Vec<(&str, SolverFn)> = vec![
        (
            "Kleindessner",
            Box::new(|| Kleindessner.solve(&inst).expect("solves")),
        ),
        ("Jones", Box::new(|| Jones.solve(&inst).expect("solves"))),
        (
            "ChenEtAl",
            Box::new(|| ChenEtAl::new().solve(&inst).expect("solves")),
        ),
    ];

    let mut best = f64::INFINITY;
    for (name, run) in &solvers {
        let start = Instant::now();
        let sol = run();
        let elapsed = start.elapsed();
        best = best.min(sol.radius);
        assert!(inst.is_fair(&sol.centers), "{name} returned unfair centers");
        println!(
            "{name:<14} radius {:>10.3}  centers {:>2}  time {:>10.2?}",
            sol.radius,
            sol.centers.len(),
            elapsed
        );
    }
    println!("\nbest radius: {best:.3}");
}

//! Quickstart: maintain a fair k-center summary over a sliding window.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! We stream two drifting clusters of "users" from two demographic groups
//! and, every so often, extract at most two centers per group that
//! summarize the *recent* data. The whole point of the data structure:
//! per-arrival cost and memory do not depend on the window length.
//!
//! Everything goes through the unified [`WindowEngine`] API — swap
//! `.fixed(..)` for `.oblivious()`, `.robust(..)` or `.matroid(..)` and
//! the rest of this program stays identical.

use fairsw::prelude::*;

fn main() {
    // Window of the 5 000 most recent points; at most 2 centers of each
    // of the 2 colors (a partition-matroid constraint with k = 4). The
    // stream's distance scales are known here (coordinates in [0, ~220],
    // finest spacing ~0.01), so we pick the scale-aware main algorithm;
    // drop the `.fixed(..)` line to get the oblivious variant instead.
    let mut engine = EngineBuilder::new()
        .window_size(5_000)
        .capacities(vec![2, 2])
        .beta(2.0) // radius guesses progress as 3^i
        .delta(1.0) // coreset precision: smaller = larger coreset, better quality
        .fixed(0.01, 400.0)
        .build(Euclidean)
        .expect("valid configuration");

    println!("streaming 20 000 points through a 5 000-point window...");
    for i in 0..20_000u64 {
        // Two clusters that drift to the right over time; colors are
        // assigned 50/50.
        let color = (i % 2) as u32;
        let cluster_base = if color == 0 { 0.0 } else { 100.0 };
        let drift = i as f64 * 0.005;
        let jitter = ((i as f64) * 0.618_033_988_7).fract() * 3.0;
        let x = cluster_base + drift + jitter;
        let y = ((i as f64) * 0.324_717_957_2).fract() * 3.0;
        engine.insert(Colored::new(EuclidPoint::new(vec![x, y]), color));

        if i % 5_000 == 4_999 {
            // Query at any time: runs the Jones 3-approximation on the
            // small coreset, never on the window.
            let sol = engine.query().expect("window is non-empty");
            let mem = engine.memory_stats();
            println!(
                "t={:>6}  centers={}  guess γ̂={:<10.4} coreset={:>4} pts  stored={:>5} pts in {} guesses",
                i + 1,
                sol.centers.len(),
                sol.guess,
                sol.coreset_size,
                mem.stored_points(),
                mem.num_guesses(),
            );
            for c in &sol.centers {
                println!(
                    "          color {} at ({:.1}, {:.1})",
                    c.color,
                    c.point.coords()[0],
                    c.point.coords()[1]
                );
            }
        }
    }
    println!(
        "\nDone. Note the stored-point count stayed flat while 4 windows' \
         worth of data streamed past — that is the paper's headline property."
    );

    // Parallel bonus round: the same engine with its per-guess work
    // spread over 2 worker threads (`.threads(2)` on the builder, or the
    // FAIRSW_THREADS env var). Answers are bit-identical at any thread
    // count — see README "Choosing a thread count" — and run_fleet
    // drives many windows concurrently for multi-tenant serving.
    let mut fleet = vec![
        EngineBuilder::new()
            .window_size(5_000)
            .capacities(vec![2, 2])
            .fixed(0.01, 400.0)
            .threads(2)
            .build(Euclidean)
            .expect("valid configuration"),
        EngineBuilder::new()
            .window_size(1_000) // a second tenant with a shorter memory
            .capacities(vec![1, 1])
            .threads(2)
            .build(Euclidean)
            .expect("valid configuration"),
    ];
    let batch: Vec<_> = (0..6_000u64)
        .map(|i| {
            let color = (i % 2) as u32;
            let x = if color == 0 { 0.0 } else { 100.0 };
            Colored::new(
                EuclidPoint::new(vec![x + (i as f64 * 0.618).fract() * 3.0, 0.0]),
                color,
            )
        })
        .collect();
    let results = run_fleet(&mut fleet, &batch);
    for (engine, result) in fleet.iter().zip(results) {
        let sol = result.expect("fleet windows are non-empty");
        println!(
            "fleet tenant (window {:>5}, {} threads): {} centers at guess {:.3}",
            engine.window_size(),
            engine.threads(),
            sol.centers.len(),
            sol.guess,
        );
    }
}

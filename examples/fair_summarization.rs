//! Fair summarization: why the *fairness* constraint matters.
//!
//! Run with: `cargo run --release --example fair_summarization`
//!
//! A loan-applications stream where a minority group (color 1, ~10% of
//! points) occupies its own region of feature space. We compare, over the
//! same window:
//!
//! 1. unconstrained k-center (budgets folded into one color — the
//!    degenerate partition matroid), which may well select no minority
//!    representative at all;
//! 2. fair center with per-group budgets, which guarantees the minority
//!    contributes representatives.
//!
//! The radii are comparable; the representation is not. (Both runs use
//! the same sliding-window machinery — the constraint costs nothing
//! architecturally.)

use fairsw::prelude::*;

fn gen_point(i: u64) -> Colored<EuclidPoint> {
    // 10% minority (color 1) clustered around (50, 50); majority spread
    // over a broad region around the origin.
    let r1 = ((i as f64) * 0.618_033_988_7).fract();
    let r2 = ((i as f64) * 0.324_717_957_2).fract();
    if i.is_multiple_of(10) {
        Colored::new(EuclidPoint::new(vec![50.0 + r1 * 6.0, 50.0 + r2 * 6.0]), 1)
    } else {
        Colored::new(EuclidPoint::new(vec![r1 * 30.0, r2 * 30.0]), 0)
    }
}

fn minority_share(centers: &[Colored<EuclidPoint>]) -> (usize, usize) {
    let minority = centers.iter().filter(|c| c.color == 1).count();
    (minority, centers.len())
}

fn main() {
    let window = 4_000usize;

    // Fair: at most 3 majority + at least-possible 2 minority slots.
    let mut fair = EngineBuilder::new()
        .window_size(window)
        .capacities(vec![3, 2])
        .delta(0.5)
        .fixed(0.001, 200.0)
        .build(Euclidean)
        .expect("scales");

    // Unconstrained with the same total k: all points recolored to one
    // class with budget 5.
    let mut unc = EngineBuilder::new()
        .window_size(window)
        .capacities(vec![5])
        .delta(0.5)
        .fixed(0.001, 200.0)
        .build(Euclidean)
        .expect("scales");

    for i in 0..12_000u64 {
        let p = gen_point(i);
        unc.insert(Colored::new(p.point.clone(), 0)); // color-blind copy
        fair.insert(p);
    }

    let fair_sol = fair.query().expect("non-empty");
    let unc_sol = unc.query().expect("non-empty");

    let (fm, ft) = minority_share(&fair_sol.centers);
    println!("fair    : {fm}/{ft} centers from the minority group");
    println!(
        "          coreset radius {:.2} on guess γ̂ = {:.2}",
        fair_sol.coreset_radius, fair_sol.guess
    );
    // The unconstrained run lost the colors; recover representation by
    // checking which centers landed in the minority region.
    let near_minority = unc_sol
        .centers
        .iter()
        .filter(|c| c.point.coords()[0] > 40.0 && c.point.coords()[1] > 40.0)
        .count();
    println!(
        "unfair  : {near_minority}/{} centers anywhere near the minority region",
        unc_sol.centers.len()
    );
    println!(
        "          coreset radius {:.2} on guess γ̂ = {:.2}",
        unc_sol.coreset_radius, unc_sol.guess
    );
    assert!(fm >= 1, "fair run must include a minority representative");
    println!(
        "\nThe fairness constraint guarantees minority representation in \
         the summary; blind k-center only covers the minority if geometry \
         happens to force it."
    );
}

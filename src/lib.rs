//! # fairsw — Fair Center Clustering in Sliding Windows
//!
//! A Rust implementation of the sliding-window fair k-center algorithm of
//! Ceccarello, Pietracaprina, Pucci and Visonà (EDBT 2026), together with
//! every substrate it rests on: metric spaces, matroids (partition,
//! laminar, …), bipartite matching, the sequential baselines (Gonzalez,
//! ChenEtAl, Jones), sliding-window scale estimation, dataset generators
//! and a benchmark harness regenerating the paper's figures.
//!
//! ## The problem
//!
//! Points arrive on a stream; each belongs to a demographic category
//! ("color"). At any time you may ask for at most `k_i` centers of color
//! `i` minimizing the maximum distance from any point *of the last `n`
//! arrivals* to its closest center — fair summarization under concept
//! drift. This crate maintains that ability in space and time independent
//! of `n`, with an `(α+ε)` approximation guarantee (`α = 3` via the
//! bundled Jones solver).
//!
//! ## One API, five variants
//!
//! Every sliding-window variant — the paper's main algorithm, its
//! scale-oblivious and compact versions, and the robust and matroid
//! extensions — implements [`core::SlidingWindowClustering`] and answers
//! with the same [`core::Solution`] type. The [`core::WindowEngine`]
//! facade builds any of them from one configuration:
//!
//! ```
//! use fairsw::prelude::*;
//!
//! let mut engine = EngineBuilder::new()
//!     .window_size(1_000)          // summarize the last 1 000 points
//!     .capacities(vec![2, 2])      // at most 2 centers per color
//!     .build(Euclidean)            // oblivious variant by default
//!     .unwrap();
//! engine.insert_batch((0..5_000u32).map(|i| {
//!     Colored::new(EuclidPoint::new(vec![(i % 97) as f64]), i % 2)
//! }));
//! let sol = engine.query().unwrap();
//! assert!(!sol.centers.is_empty());
//! ```
//!
//! Want a specific variant? `.fixed(dmin, dmax)`, `.compact(dmin, dmax)`,
//! `.robust(z, dmin, dmax)` or `.matroid(constraint, dmin, dmax)` on the
//! builder — or construct the concrete types in [`core`] directly.
//!
//! ## Entry points
//!
//! * [`core::WindowEngine`] / [`core::EngineBuilder`] — any variant
//!   behind one enum-dispatched facade;
//! * [`core::SlidingWindowClustering`] — the Update/Query trait for
//!   generic streaming code;
//! * [`core::FairSlidingWindow`] and siblings — the concrete algorithms;
//! * [`sequential::Jones`], [`sequential::ChenEtAl`] — offline solvers;
//! * [`datasets`] — synthetic data, CSV loading.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use fairsw_core as core;
pub use fairsw_datasets as datasets;
pub use fairsw_matching as matching;
pub use fairsw_matroid as matroid;
pub use fairsw_metric as metric;
pub use fairsw_sequential as sequential;
pub use fairsw_stream as stream;

/// One-stop imports for typical use.
pub mod prelude {
    pub use fairsw_core::{
        run_fleet, CompactFairSlidingWindow, EngineBuilder, FairSWConfig, FairSlidingWindow,
        GuessMemory, MatroidSlidingWindow, MemoryStats, ObliviousFairSlidingWindow,
        ParallelismSpec, QueryError, RobustFairSlidingWindow, SlidingWindowClustering, Solution,
        SolutionExtras, VariantSpec, WindowEngine,
    };
    pub use fairsw_matroid::{AnyMatroid, Group, LaminarMatroid, Matroid, PartitionMatroid};
    pub use fairsw_metric::{
        Angular, Colored, ColoredId, EuclidPoint, Euclidean, Metric, PointFootprint, PointId,
        PointStore, Resolver,
    };
    pub use fairsw_sequential::{
        ChenEtAl, ExactSolver, FairCenterSolver, FairSolution, Instance, Jones, Kleindessner,
        RobustFair,
    };
    pub use fairsw_stream::ExactWindow;
}

//! # fairsw — Fair Center Clustering in Sliding Windows
//!
//! A Rust implementation of the sliding-window fair k-center algorithm of
//! Ceccarello, Pietracaprina, Pucci and Visonà (EDBT 2026), together with
//! every substrate it rests on: metric spaces, partition matroids,
//! bipartite matching, the sequential baselines (Gonzalez, ChenEtAl,
//! Jones), sliding-window scale estimation, dataset generators and a
//! benchmark harness regenerating the paper's figures.
//!
//! ## The problem
//!
//! Points arrive on a stream; each belongs to a demographic category
//! ("color"). At any time you may ask for at most `k_i` centers of color
//! `i` minimizing the maximum distance from any point *of the last `n`
//! arrivals* to its closest center — fair summarization under concept
//! drift. This crate maintains that ability in space and time independent
//! of `n`, with an `(α+ε)` approximation guarantee (`α = 3` via the
//! bundled Jones solver).
//!
//! ## Entry points
//!
//! * [`core::FairSlidingWindow`] — the main algorithm (stream scale known);
//! * [`core::ObliviousFairSlidingWindow`] — scale estimated on the fly;
//! * [`core::CompactFairSlidingWindow`] — dimension-free space variant;
//! * [`sequential::Jones`], [`sequential::ChenEtAl`] — offline solvers;
//! * [`datasets`] — synthetic data, CSV loading.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use fairsw_core as core;
pub use fairsw_datasets as datasets;
pub use fairsw_matching as matching;
pub use fairsw_matroid as matroid;
pub use fairsw_metric as metric;
pub use fairsw_sequential as sequential;
pub use fairsw_stream as stream;

/// One-stop imports for typical use.
pub mod prelude {
    pub use fairsw_core::{
        CompactFairSlidingWindow, FairSWConfig, FairSlidingWindow, MatroidSlidingWindow,
        ObliviousFairSlidingWindow, QueryError, RobustFairSlidingWindow, RobustWindowSolution,
        WindowSolution,
    };
    pub use fairsw_matroid::{Group, LaminarMatroid, Matroid, PartitionMatroid};
    pub use fairsw_metric::{Angular, Colored, Euclidean, EuclidPoint, Metric};
    pub use fairsw_sequential::{
        ChenEtAl, ExactSolver, FairCenterSolver, FairSolution, Instance, Jones, Kleindessner,
        RobustFair,
    };
    pub use fairsw_stream::ExactWindow;
}

//! `fairsw-cli` — stream a CSV point file through the sliding-window
//! fair-center algorithm and print periodic solutions.
//!
//! ```text
//! USAGE:
//!   fairsw-cli --input points.csv --window 10000 --caps 2,2,4 [OPTIONS]
//!
//! INPUT FORMAT:
//!   One point per line: x_1,...,x_d,color  (color = integer in 0..ℓ).
//!   Lines starting with '#' are skipped.
//!
//! OPTIONS:
//!   --input PATH        CSV file (default: built-in demo stream)
//!   --embeddings DIM    replace the input with the synthetic
//!                       embedding-drift stream (unit-norm vectors in
//!                       DIM dimensions, 3x window points)
//!   --window N          window length (default 10000)
//!   --caps a,b,c        per-color budgets k_i (default: 2 per color seen)
//!   --delta F           coreset precision δ in (0,4] (default 1.0)
//!   --beta F            guess progression β (default 2.0)
//!   --metric NAME       distance oracle: euclidean (default), manhattan,
//!                       chebyshev or angular — every variant and the
//!                       scale estimation run under the chosen metric
//!   --query-every N     query cadence in arrivals (default: window)
//!   --oblivious         estimate distance scales on the fly
//!   --compact           Corollary 2 variant (dimension-free space)
//!   --robust Z          tolerate Z outliers per window
//!   --threads N         spread per-guess work over N worker threads
//!                       (default: FAIRSW_THREADS env var, else 1);
//!                       answers are bit-identical at any thread count
//!   --approx EPS        allow the runtime-dispatched SIMD kernels
//!                       (answers stay within the paper's (1+ε) radius
//!                       envelope; default: exact scalar kernels).
//!                       FAIRSW_SIMD={auto,force,off} picks the ISA
//!   --compact-mirror    with --approx: stage candidate scans as the
//!                       compact f32 mirror (half the staged bytes);
//!                       final radii are re-ranked in exact f64
//!   --project DIM       JL-project every point to DIM dimensions at
//!                       ingest (scale estimation, clustering, memory
//!                       and snapshots all live in the projected space)
//!   --project-seed S    seed of the projection matrix (default
//!                       0xfa15c0de); the matrix is rematerialized from
//!                       the seed, never stored
//!   --project-sparse    use the sparse Achlioptas ±1/0 matrix instead
//!                       of the dense Gaussian one
//!   --snapshot-out PATH write an FSW2 snapshot after the stream ends
//!                       (fixed variant only — the default when no
//!                       variant flag is given)
//!   --snapshot-in PATH  resume from an FSW2 snapshot instead of
//!                       building a fresh engine (the snapshot carries
//!                       the window/caps/beta/delta configuration)
//!   --quiet             suppress per-center output
//! ```
//!
//! Every variant is constructed and driven through the unified
//! [`WindowEngine`] facade — the streaming loop below contains no
//! per-variant code.

use fairsw::core::{
    ParallelismSpec, SlidingWindowClustering, SolutionExtras, VariantSpec, WindowEngine,
};
use fairsw::datasets::read_csv_points;
use fairsw::metric::{
    sampled_extremes, Angular, Chebyshev, Colored, EuclidPoint, Euclidean, Exactness, Manhattan,
    Metric, Projector, Relaxed,
};
use fairsw_core::FairSWConfig;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Which distance oracle to cluster under (`--metric`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum MetricChoice {
    #[default]
    Euclidean,
    Manhattan,
    Chebyshev,
    Angular,
}

impl MetricChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "euclidean" | "l2" => Ok(MetricChoice::Euclidean),
            "manhattan" | "l1" => Ok(MetricChoice::Manhattan),
            "chebyshev" | "linf" => Ok(MetricChoice::Chebyshev),
            "angular" | "cosine" => Ok(MetricChoice::Angular),
            other => Err(format!(
                "--metric: unknown metric {other:?} \
                 (expected euclidean|manhattan|chebyshev|angular)"
            )),
        }
    }

    fn name(self) -> &'static str {
        match self {
            MetricChoice::Euclidean => "euclidean",
            MetricChoice::Manhattan => "manhattan",
            MetricChoice::Chebyshev => "chebyshev",
            MetricChoice::Angular => "angular",
        }
    }
}

#[derive(Debug)]
struct Args {
    input: Option<PathBuf>,
    embeddings: Option<usize>,
    window: usize,
    caps: Option<Vec<usize>>,
    delta: f64,
    beta: f64,
    metric: MetricChoice,
    query_every: Option<usize>,
    oblivious: bool,
    compact: bool,
    robust: Option<usize>,
    threads: Option<usize>,
    approx: Option<f64>,
    compact_mirror: bool,
    project: Option<usize>,
    project_seed: u64,
    project_sparse: bool,
    snapshot_out: Option<PathBuf>,
    snapshot_in: Option<PathBuf>,
    quiet: bool,
}

/// Default `--project-seed`: arbitrary but fixed, so two runs (or a run
/// and its snapshot resume) agree without spelling the seed out.
const DEFAULT_PROJECT_SEED: u64 = 0xfa15_c0de;

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        embeddings: None,
        window: 10_000,
        caps: None,
        delta: 1.0,
        beta: 2.0,
        metric: MetricChoice::default(),
        query_every: None,
        oblivious: false,
        compact: false,
        robust: None,
        threads: None,
        approx: None,
        compact_mirror: false,
        project: None,
        project_seed: DEFAULT_PROJECT_SEED,
        project_sparse: false,
        snapshot_out: None,
        snapshot_in: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--input" => args.input = Some(PathBuf::from(value("--input")?)),
            "--embeddings" => {
                let dim: usize = value("--embeddings")?
                    .parse()
                    .map_err(|e| format!("--embeddings: {e}"))?;
                if dim < 4 {
                    return Err("--embeddings: dimension must be at least 4".into());
                }
                args.embeddings = Some(dim);
            }
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?
            }
            "--caps" => {
                let caps: Result<Vec<usize>, _> =
                    value("--caps")?.split(',').map(str::parse).collect();
                args.caps = Some(caps.map_err(|e| format!("--caps: {e}"))?);
            }
            "--delta" => {
                args.delta = value("--delta")?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?
            }
            "--beta" => {
                args.beta = value("--beta")?
                    .parse()
                    .map_err(|e| format!("--beta: {e}"))?
            }
            "--metric" => args.metric = MetricChoice::parse(&value("--metric")?)?,
            "--query-every" => {
                args.query_every = Some(
                    value("--query-every")?
                        .parse()
                        .map_err(|e| format!("--query-every: {e}"))?,
                )
            }
            "--oblivious" => args.oblivious = true,
            "--compact" => args.compact = true,
            "--robust" => {
                args.robust = Some(
                    value("--robust")?
                        .parse()
                        .map_err(|e| format!("--robust: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--approx" => {
                let eps: f64 = value("--approx")?
                    .parse()
                    .map_err(|e| format!("--approx: {e}"))?;
                if !eps.is_finite() || eps < 0.0 {
                    return Err("--approx: epsilon must be a finite non-negative number".into());
                }
                args.approx = Some(eps);
            }
            "--compact-mirror" => args.compact_mirror = true,
            "--project" => {
                let dim: usize = value("--project")?
                    .parse()
                    .map_err(|e| format!("--project: {e}"))?;
                if dim == 0 {
                    return Err("--project: dimension must be positive".into());
                }
                args.project = Some(dim);
            }
            "--project-seed" => {
                args.project_seed = value("--project-seed")?
                    .parse()
                    .map_err(|e| format!("--project-seed: {e}"))?
            }
            "--project-sparse" => args.project_sparse = true,
            "--snapshot-out" => args.snapshot_out = Some(PathBuf::from(value("--snapshot-out")?)),
            "--snapshot-in" => args.snapshot_in = Some(PathBuf::from(value("--snapshot-in")?)),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                print!("{}", USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

const USAGE: &str = "\
fairsw-cli: sliding-window fair k-center over a CSV stream

USAGE:
  fairsw-cli --input points.csv --window 10000 --caps 2,2,4 [OPTIONS]

OPTIONS:
  --input PATH     CSV file: x_1,...,x_d,color per line (default: demo)
  --embeddings DIM replace the input with the synthetic embedding-drift
                   stream: unit-norm vectors in DIM dimensions drifting
                   along great circles, 3x window points
  --window N       window length (default 10000)
  --caps a,b,c     per-color budgets (default: 2 per color present)
  --delta F        coreset precision in (0,4] (default 1.0)
  --beta F         guess progression (default 2.0)
  --metric NAME    distance oracle: euclidean (default), manhattan,
                   chebyshev or angular (aliases: l2, l1, linf, cosine)
  --query-every N  query cadence in arrivals (default: window)
  --oblivious      estimate distance scales on the fly
  --compact        Corollary 2 variant (dimension-free space)
  --robust Z       tolerate Z outliers per window
  --threads N      per-guess worker threads (default: FAIRSW_THREADS,
                   else sequential); answers are bit-identical
  --approx EPS     allow SIMD kernels (answers stay inside the (1+ε)
                   radius envelope; default: exact scalar kernels);
                   the ISA is picked at startup, override with
                   FAIRSW_SIMD={auto,force,off}
  --compact-mirror with --approx: stage candidate scans as the compact
                   f32 mirror; final radii re-rank in exact f64
  --project DIM    JL-project every point to DIM dimensions at ingest:
                   scale estimation, clustering, memory and snapshots
                   all live in the projected space (distances are
                   preserved within the JL (1±ε) envelope)
  --project-seed S projection-matrix seed, decimal (default 4195729630
                   = 0xfa15c0de); the matrix rematerializes from the
                   seed and is never stored
  --project-sparse sparse Achlioptas ±1/0 matrix instead of dense
                   Gaussian (cheaper to apply, same guarantee)
  --snapshot-out PATH  write an FSW2 snapshot after the stream ends
                   (fixed variant only, the default variant); the same
                   format fairsw-served spools on CHECKPOINT
  --snapshot-in PATH   resume from an FSW2 snapshot instead of building
                   a fresh engine (it carries window/caps/beta/delta;
                   --window/--caps/--delta/--beta are then ignored.
                   Snapshots do not record the metric: pass the same
                   --metric the snapshot was written with)
  --quiet          suppress per-center output
";

fn demo_stream(n: usize) -> Vec<Colored<EuclidPoint>> {
    (0..n)
        .map(|i| {
            let base = (i % 3) as f64 * 50.0;
            let x = base + ((i as f64) * 0.618_033_988_7).fract() * 5.0;
            let y = ((i as f64) * 0.324_717_957_2).fract() * 5.0;
            Colored::new(EuclidPoint::new(vec![x, y]), (i % 3) as u32)
        })
        .collect()
}

/// Picks the variant spec the flags describe (scale bounds estimated from
/// the data *under the selected metric* for the non-oblivious variants).
fn variant_for<M: Metric<Point = EuclidPoint>>(
    metric: &M,
    args: &Args,
    points: &[Colored<EuclidPoint>],
) -> Result<VariantSpec, String> {
    let exclusive = [args.oblivious, args.compact, args.robust.is_some()];
    if exclusive.iter().filter(|&&f| f).count() > 1 {
        return Err("--oblivious, --compact and --robust are mutually exclusive".into());
    }
    if args.oblivious {
        return Ok(VariantSpec::Oblivious);
    }
    let raw: Vec<EuclidPoint> = points.iter().map(|p| p.point.clone()).collect();
    let ext =
        sampled_extremes(metric, &raw, 512).ok_or("degenerate input (all points coincide)")?;
    Ok(match args.robust {
        Some(z) => VariantSpec::Robust {
            z,
            dmin: ext.dmin,
            dmax: ext.dmax,
        },
        None if args.compact => VariantSpec::Compact {
            dmin: ext.dmin,
            dmax: ext.dmax,
        },
        None => VariantSpec::Fixed {
            dmin: ext.dmin,
            dmax: ext.dmax,
        },
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    if args.input.is_some() && args.embeddings.is_some() {
        return Err("--input and --embeddings are mutually exclusive".into());
    }
    let points = match (&args.input, args.embeddings) {
        (Some(path), _) => read_csv_points(path).map_err(|e| format!("reading input: {e}"))?,
        (None, Some(dim)) => {
            let data = fairsw::datasets::embedding_drift(
                args.window * 3,
                dim,
                fairsw::datasets::EmbeddingDriftParams::default(),
                DEFAULT_PROJECT_SEED,
            );
            eprintln!("generated {} ({} points)", data.name, data.points.len());
            data.points
        }
        (None, None) => {
            eprintln!("no --input given: running on a built-in demo stream");
            demo_stream(args.window * 3)
        }
    };
    if points.is_empty() {
        return Err("input contains no points".into());
    }
    let ncolors = points.iter().map(|p| p.color).max().unwrap_or(0) as usize + 1;
    let caps = match &args.caps {
        Some(c) => {
            if c.len() < ncolors {
                return Err(format!(
                    "--caps has {} entries but the data uses {} colors",
                    c.len(),
                    ncolors
                ));
            }
            c.clone()
        }
        None => vec![2; ncolors],
    };

    if args.compact_mirror && args.approx.is_none() {
        return Err("--compact-mirror requires --approx".into());
    }
    let exactness = match args.approx {
        Some(epsilon) => Exactness::Approx { epsilon },
        None => Exactness::Exact,
    };
    macro_rules! wrap {
        ($m:expr) => {
            Relaxed::new($m, exactness).with_compact_staging(args.compact_mirror)
        };
    }

    // One generic streaming body, instantiated per distance oracle: the
    // whole pipeline below (engine construction, snapshot resume, the
    // insert/query loop) is metric-polymorphic through `WindowEngine`.
    // Every oracle rides in a `Relaxed` wrapper carrying the kernel
    // exactness policy; the default `Exact` answers bit-identically to
    // the bare metric.
    match args.metric {
        MetricChoice::Euclidean => drive(wrap!(Euclidean), &args, &points, &caps),
        MetricChoice::Manhattan => drive(wrap!(Manhattan), &args, &points, &caps),
        MetricChoice::Chebyshev => drive(wrap!(Chebyshev), &args, &points, &caps),
        MetricChoice::Angular => drive(wrap!(Angular), &args, &points, &caps),
    }
}

/// Streams `points` through the configured engine under `metric` and
/// prints periodic solutions.
fn drive<M>(
    metric: M,
    args: &Args,
    points: &[Colored<EuclidPoint>],
    caps: &[usize],
) -> Result<(), String>
where
    M: Metric<Point = EuclidPoint> + Sync,
{
    let par = match args.threads {
        Some(n) => ParallelismSpec::Threads(n),
        None => ParallelismSpec::Auto, // honors FAIRSW_THREADS
    };
    let mut engine = match &args.snapshot_in {
        Some(path) => {
            // Resume: the snapshot carries the full configuration, so
            // the config/variant flags are superseded.
            if args.oblivious || args.compact || args.robust.is_some() {
                return Err(
                    "--snapshot-in resumes a fixed-variant engine; it conflicts with \
                     --oblivious/--compact/--robust"
                        .into(),
                );
            }
            if args.project.is_some() {
                return Err(
                    "--snapshot-in conflicts with --project: a snapshot carries its own \
                     projection (seed and dimensions) and restores it automatically"
                        .into(),
                );
            }
            let bytes = std::fs::read(path).map_err(|e| format!("reading {path:?}: {e}"))?;
            let engine = WindowEngine::restore(metric, &bytes)
                .map_err(|e| format!("restoring {path:?}: {e}"))?
                .with_parallelism(par);
            // FSW2 snapshots carry no metric identifier: the guess
            // lattice and coresets inside were computed under whatever
            // metric wrote them, so resuming under a different one
            // silently voids the approximation guarantees.
            eprintln!(
                "note: snapshots do not record the metric — resuming under \
                 `{}`; supply the same --metric the snapshot was written with",
                args.metric.name()
            );
            eprintln!(
                "resumed from {path:?} at t={} (window {}, {} stored points)",
                engine.time(),
                engine.window_size(),
                engine.stored_points()
            );
            engine
        }
        None => {
            let cfg = FairSWConfig::builder()
                .window_size(args.window)
                .capacities(caps.to_vec())
                .beta(args.beta)
                .delta(args.delta)
                .build()
                .map_err(|e| format!("configuration: {e}"))?;
            // The engine clusters projected payloads, so when --project
            // is on the scale estimation must sample distances in the
            // projected space — dmin/dmax under the raw dimensionality
            // would mis-seed the guess lattice.
            let spec = match args.project {
                Some(out_dim) => {
                    let in_dim = points[0].point.dim();
                    if in_dim == 0 {
                        return Err("--project: input points are zero-dimensional".into());
                    }
                    let projector = if args.project_sparse {
                        Projector::sparse(in_dim, out_dim, args.project_seed)
                    } else {
                        Projector::dense(in_dim, out_dim, args.project_seed)
                    };
                    let projected: Vec<Colored<EuclidPoint>> = points
                        .iter()
                        .map(|p| projector.project_colored(p))
                        .collect();
                    variant_for(&metric, args, &projected)?
                }
                None => variant_for(&metric, args, points)?,
            };
            let engine = WindowEngine::build(cfg, spec, metric)
                .map_err(|e| format!("configuration: {e}"))?
                .with_parallelism(par);
            match args.project {
                Some(out_dim) => {
                    engine.with_projection(out_dim, args.project_seed, args.project_sparse)
                }
                None => engine,
            }
        }
    };
    eprintln!(
        "variant: {} / {} metric ({} thread{})",
        engine.variant_name(),
        args.metric.name(),
        engine.threads(),
        if engine.threads() == 1 { "" } else { "s" }
    );
    if let Some(proj) = engine.projection() {
        eprintln!(
            "projection: {} JL to {} dims (seed {:#x})",
            if proj.sparse() { "sparse" } else { "dense" },
            proj.out_dim(),
            proj.seed(),
        );
    }

    let cadence = args.query_every.unwrap_or(args.window).max(1);
    let t0 = Instant::now();
    let mut queries = 0usize;

    for (i, p) in points.iter().enumerate() {
        engine.insert(p.clone());
        if (i + 1) % cadence == 0 {
            queries += 1;
            let s = engine.query().map_err(|e| e.to_string())?;
            let extra = match &s.extras {
                SolutionExtras::Robust { outliers } => {
                    format!("  outliers={}", outliers.len())
                }
                _ => String::new(),
            };
            println!(
                "t={:>9}  centers={:<2} radius={:<12.4} γ̂={:<10.4} coreset={:<5} stored={:<6}{extra}",
                i + 1,
                s.centers.len(),
                s.coreset_radius,
                s.guess,
                s.coreset_size,
                engine.stored_points(),
            );
            if !args.quiet {
                for c in &s.centers {
                    let coords: Vec<String> =
                        c.point.coords().iter().map(|v| format!("{v:.3}")).collect();
                    println!("    color {} @ ({})", c.color, coords.join(", "));
                }
            }
        }
    }
    if let Some(path) = &args.snapshot_out {
        let bytes = engine.snapshot().ok_or_else(|| {
            format!(
                "--snapshot-out: the {} variant does not support snapshots \
                 (only the fixed variant does)",
                engine.variant_name()
            )
        })?;
        std::fs::write(path, &bytes).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!(
            "wrote snapshot {path:?} ({} bytes at t={})",
            bytes.len(),
            engine.time()
        );
    }
    let elapsed = t0.elapsed();
    eprintln!(
        "processed {} points, {queries} queries in {elapsed:.2?} \
         ({:.0} points/s on {} thread{})",
        points.len(),
        points.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        engine.threads(),
        if engine.threads() == 1 { "" } else { "s" }
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

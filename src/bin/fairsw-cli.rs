//! `fairsw-cli` — stream a CSV point file through the sliding-window
//! fair-center algorithm and print periodic solutions.
//!
//! ```text
//! USAGE:
//!   fairsw-cli --input points.csv --window 10000 --caps 2,2,4 [OPTIONS]
//!
//! INPUT FORMAT:
//!   One point per line: x_1,...,x_d,color  (color = integer in 0..ℓ).
//!   Lines starting with '#' are skipped.
//!
//! OPTIONS:
//!   --input PATH        CSV file (default: built-in demo stream)
//!   --window N          window length (default 10000)
//!   --caps a,b,c        per-color budgets k_i (default: 2 per color seen)
//!   --delta F           coreset precision δ in (0,4] (default 1.0)
//!   --beta F            guess progression β (default 2.0)
//!   --query-every N     query cadence in arrivals (default: window)
//!   --oblivious         estimate distance scales on the fly
//!   --robust Z          tolerate Z outliers per window
//!   --quiet             suppress per-center output
//! ```

use fairsw::core::{
    FairSWConfig, FairSlidingWindow, ObliviousFairSlidingWindow, RobustFairSlidingWindow,
};
use fairsw::datasets::read_csv_points;
use fairsw::metric::{sampled_extremes, Colored, Euclidean, EuclidPoint};
use fairsw::sequential::Jones;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

#[derive(Debug)]
struct Args {
    input: Option<PathBuf>,
    window: usize,
    caps: Option<Vec<usize>>,
    delta: f64,
    beta: f64,
    query_every: Option<usize>,
    oblivious: bool,
    robust: Option<usize>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        window: 10_000,
        caps: None,
        delta: 1.0,
        beta: 2.0,
        query_every: None,
        oblivious: false,
        robust: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--input" => args.input = Some(PathBuf::from(value("--input")?)),
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?
            }
            "--caps" => {
                let caps: Result<Vec<usize>, _> =
                    value("--caps")?.split(',').map(str::parse).collect();
                args.caps = Some(caps.map_err(|e| format!("--caps: {e}"))?);
            }
            "--delta" => {
                args.delta = value("--delta")?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?
            }
            "--beta" => {
                args.beta = value("--beta")?
                    .parse()
                    .map_err(|e| format!("--beta: {e}"))?
            }
            "--query-every" => {
                args.query_every = Some(
                    value("--query-every")?
                        .parse()
                        .map_err(|e| format!("--query-every: {e}"))?,
                )
            }
            "--oblivious" => args.oblivious = true,
            "--robust" => {
                args.robust = Some(
                    value("--robust")?
                        .parse()
                        .map_err(|e| format!("--robust: {e}"))?,
                )
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                print!("{}", USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

const USAGE: &str = "\
fairsw-cli: sliding-window fair k-center over a CSV stream

USAGE:
  fairsw-cli --input points.csv --window 10000 --caps 2,2,4 [OPTIONS]

OPTIONS:
  --input PATH     CSV file: x_1,...,x_d,color per line (default: demo)
  --window N       window length (default 10000)
  --caps a,b,c     per-color budgets (default: 2 per color present)
  --delta F        coreset precision in (0,4] (default 1.0)
  --beta F         guess progression (default 2.0)
  --query-every N  query cadence in arrivals (default: window)
  --oblivious      estimate distance scales on the fly
  --robust Z       tolerate Z outliers per window
  --quiet          suppress per-center output
";

fn demo_stream(n: usize) -> Vec<Colored<EuclidPoint>> {
    (0..n)
        .map(|i| {
            let base = (i % 3) as f64 * 50.0;
            let x = base + ((i as f64) * 0.618_033_988_7).fract() * 5.0;
            let y = ((i as f64) * 0.324_717_957_2).fract() * 5.0;
            Colored::new(EuclidPoint::new(vec![x, y]), (i % 3) as u32)
        })
        .collect()
}

enum Engine {
    Plain(Box<FairSlidingWindow<Euclidean>>),
    Oblivious(Box<ObliviousFairSlidingWindow<Euclidean>>),
    Robust(Box<RobustFairSlidingWindow<Euclidean>>),
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let points = match &args.input {
        Some(path) => read_csv_points(path).map_err(|e| format!("reading input: {e}"))?,
        None => {
            eprintln!("no --input given: running on a built-in demo stream");
            demo_stream(args.window * 3)
        }
    };
    if points.is_empty() {
        return Err("input contains no points".into());
    }
    let ncolors = points.iter().map(|p| p.color).max().unwrap_or(0) as usize + 1;
    let caps = match args.caps {
        Some(c) => {
            if c.len() < ncolors {
                return Err(format!(
                    "--caps has {} entries but the data uses {} colors",
                    c.len(),
                    ncolors
                ));
            }
            c
        }
        None => vec![2; ncolors],
    };

    let cfg = FairSWConfig::builder()
        .window_size(args.window)
        .capacities(caps.clone())
        .beta(args.beta)
        .delta(args.delta)
        .build()
        .map_err(|e| format!("configuration: {e}"))?;

    let mut engine = if args.oblivious {
        Engine::Oblivious(Box::new(
            ObliviousFairSlidingWindow::new(cfg, Euclidean).map_err(|e| e.to_string())?,
        ))
    } else {
        let raw: Vec<EuclidPoint> = points.iter().map(|p| p.point.clone()).collect();
        let ext = sampled_extremes(&Euclidean, &raw, 512)
            .ok_or("degenerate input (all points coincide)")?;
        match args.robust {
            Some(z) => Engine::Robust(Box::new(
                RobustFairSlidingWindow::new(cfg, z, Euclidean, ext.dmin, ext.dmax)
                    .map_err(|e| e.to_string())?,
            )),
            None => Engine::Plain(Box::new(
                FairSlidingWindow::new(cfg, Euclidean, ext.dmin, ext.dmax)
                    .map_err(|e| e.to_string())?,
            )),
        }
    };
    if args.robust.is_some() && args.oblivious {
        return Err("--robust and --oblivious cannot be combined (yet)".into());
    }

    let cadence = args.query_every.unwrap_or(args.window).max(1);
    let solver = Jones;
    let t0 = Instant::now();
    let mut queries = 0usize;

    for (i, p) in points.iter().enumerate() {
        match &mut engine {
            Engine::Plain(e) => e.insert(p.clone()),
            Engine::Oblivious(e) => e.insert(p.clone()),
            Engine::Robust(e) => e.insert(p.clone()),
        }
        if (i + 1) % cadence == 0 {
            queries += 1;
            let (centers, guess, coreset, radius, mem, extra) = match &engine {
                Engine::Plain(e) => {
                    let s = e.query(&solver).map_err(|e| e.to_string())?;
                    (s.centers, s.guess, s.coreset_size, s.coreset_radius, e.stored_points(), String::new())
                }
                Engine::Oblivious(e) => {
                    let s = e.query(&solver).map_err(|e| e.to_string())?;
                    (s.centers, s.guess, s.coreset_size, s.coreset_radius, e.stored_points(), String::new())
                }
                Engine::Robust(e) => {
                    let s = e.query().map_err(|e| e.to_string())?;
                    let extra = format!("  outliers={}", s.outliers.len());
                    (s.centers, s.guess, s.coreset_size, s.coreset_radius, e.stored_points(), extra)
                }
            };
            println!(
                "t={:>9}  centers={:<2} radius={:<12.4} γ̂={:<10.4} coreset={:<5} stored={:<6}{extra}",
                i + 1,
                centers.len(),
                radius,
                guess,
                coreset,
                mem,
            );
            if !args.quiet {
                for c in &centers {
                    let coords: Vec<String> =
                        c.point.coords().iter().map(|v| format!("{v:.3}")).collect();
                    println!("    color {} @ ({})", c.color, coords.join(", "));
                }
            }
        }
    }
    eprintln!(
        "processed {} points, {queries} queries in {:.2?}",
        points.len(),
        t0.elapsed()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#!/usr/bin/env bash
# Serve smoke test: boot fairsw-served on an ephemeral port, run a short
# multi-tenant loadgen burst, assert a clean SHUTDOWN-driven exit.
# Honors FAIRSW_THREADS for the tenants' per-engine worker pools.
set -euo pipefail

cargo build --release -p fairsw-serve

# Raise the fd ceiling before the server starts (it inherits the limit
# at spawn): the 512-connection sweep below needs 512 sockets on each
# end plus WAL/spool files and headroom.
ulimit -n 4096 || echo "ulimit raise unavailable; proceeding with default"

SCRATCH="$(mktemp -d)"
SERVER_PID=""
# Kill the background server on any failure path so a broken burst
# fails the step fast instead of hanging it on the orphaned process.
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$SCRATCH"' EXIT
PORT_FILE="$SCRATCH/addr"

./target/release/fairsw-served \
    --addr 127.0.0.1:0 \
    --shards 2 \
    --spool "$SCRATCH/spool" \
    --port-file "$PORT_FILE" &
SERVER_PID=$!

# Wait for the server to publish its ephemeral address.
for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "server never published its address"; exit 1; }
ADDR="$(cat "$PORT_FILE")"
echo "server at $ADDR (FAIRSW_THREADS=${FAIRSW_THREADS:-unset})"

# Read-heavy burst first: 95/5 query/ingest with Zipf-skewed tenants —
# repeat queries against an often-unchanged window exercise the serve-
# side result cache on this thread leg; every query must still answer.
./target/release/fairsw-loadgen \
    --addr "$ADDR" --tenants 4 --points 2000 --batch 128 --window 400 \
    --mix read-heavy

# Wide-dim ingest: the unit-norm embedding-drift workload with a
# server-side JL projection riding in the CREATE config — covers the
# projection wire path end to end (project-before-WAL, STATS fields
# surfaced in the report) on this thread leg.
./target/release/fairsw-loadgen \
    --addr "$ADDR" --tenants 2 --points 1500 --batch 128 --window 400 \
    --embeddings --dim 256 --project 32

# Same wide-dim burst through the sparse Achlioptas matrix.
./target/release/fairsw-loadgen \
    --addr "$ADDR" --tenants 2 --points 1500 --batch 128 --window 400 \
    --embeddings --dim 256 --project 32 --project-sparse

# High-concurrency sweep: 512 open connections against the reactor with
# connection churn, exercising accept/reap under load and the bounded
# per-connection buffers.
./target/release/fairsw-loadgen \
    --addr "$ADDR" --connections 512 --tenants 8 --requests 4000 \
    --window 400 --churn 0.02

# Short burst: 4 tenants, batched ingest, final queries must answer;
# --shutdown asks the server to exit cleanly afterwards.
./target/release/fairsw-loadgen \
    --addr "$ADDR" --tenants 4 --points 3000 --batch 128 --window 400 \
    --shutdown

# The server must exit cleanly (status 0) after SHUTDOWN.
wait "$SERVER_PID"
SERVER_PID=""
echo "serve smoke: clean shutdown"

# WAL durability smoke: the crash drill boots its own WAL-backed server,
# ingests, SIGKILLs it mid-stream, restarts from the spool + WAL and
# verifies the recovered tenant lost at most one batch and keeps
# answering queries.
./target/release/fairsw-loadgen \
    --crash-drill --points 2000 --batch 64 --kill-after 1000 \
    --dir "$SCRATCH/drill" --served-bin ./target/release/fairsw-served
echo "serve smoke: WAL crash drill clean"

# Same drill, recovering by failover: a hot standby streams the leader's
# WAL, the leader is SIGKILLed, the standby is PROMOTEd and takes over.
./target/release/fairsw-loadgen \
    --crash-drill --failover --points 2000 --batch 64 --kill-after 1000 \
    --dir "$SCRATCH/drill-failover" --served-bin ./target/release/fairsw-served
echo "serve smoke: failover drill clean"

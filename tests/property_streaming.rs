//! Property tests over the streaming algorithms: random streams, random
//! configurations, structural invariants and fairness of every answer.

use fairsw::prelude::*;
use proptest::prelude::*;

fn stream_strategy() -> impl Strategy<Value = Vec<(f64, f64, u8)>> {
    // (x, y, color) triples; coordinates on very different scales to
    // stress the guess lattice.
    proptest::collection::vec(
        (
            prop_oneof![-1e3..1e3f64, -1.0..1.0f64],
            prop_oneof![-1e3..1e3f64, -1.0..1.0f64],
            0u8..3,
        ),
        2..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ours_always_fair_and_structurally_sound(
        pts in stream_strategy(),
        window in 2usize..40,
        caps in proptest::collection::vec(1usize..3, 3),
    ) {
        let cfg = FairSWConfig::builder()
            .window_size(window)
            .capacities(caps.clone())
            .beta(2.0)
            .delta(1.0)
            .build()
            .expect("valid");
        let mut sw = FairSlidingWindow::new(cfg, Euclidean, 1e-4, 1e4)
            .expect("valid");
        for &(x, y, c) in &pts {
            sw.insert(Colored::new(EuclidPoint::new(vec![x, y]), c as u32));
        }
        sw.check_invariants().map_err(TestCaseError::fail)?;
        let sol = sw.query().expect("non-empty window");
        // Fairness of the answer.
        let mut counts = vec![0usize; caps.len()];
        for c in &sol.centers {
            counts[c.color as usize] += 1;
        }
        for (i, (&got, &cap)) in counts.iter().zip(&caps).enumerate() {
            prop_assert!(got <= cap, "color {i} over budget");
        }
        prop_assert!(sol.coreset_size > 0);
        prop_assert!(sol.coreset_radius.is_finite());
    }

    #[test]
    fn oblivious_always_answers_and_is_fair(
        pts in stream_strategy(),
        window in 2usize..40,
    ) {
        let caps = vec![1usize, 2, 1];
        let cfg = FairSWConfig::builder()
            .window_size(window)
            .capacities(caps.clone())
            .beta(2.0)
            .delta(1.0)
            .build()
            .expect("valid");
        let mut sw = ObliviousFairSlidingWindow::new(cfg, Euclidean).expect("valid");
        for &(x, y, c) in &pts {
            sw.insert(Colored::new(EuclidPoint::new(vec![x, y]), c as u32));
        }
        sw.check_invariants().map_err(TestCaseError::fail)?;
        let sol = sw.query().expect("non-empty window");
        let mut counts = vec![0usize; caps.len()];
        for c in &sol.centers {
            counts[c.color as usize] += 1;
        }
        for (&got, &cap) in counts.iter().zip(&caps) {
            prop_assert!(got <= cap);
        }
    }

    #[test]
    fn compact_always_answers_and_is_fair(
        pts in stream_strategy(),
        window in 2usize..40,
    ) {
        let caps = vec![2usize, 1, 1];
        let cfg = FairSWConfig::builder()
            .window_size(window)
            .capacities(caps.clone())
            .beta(2.0)
            .build()
            .expect("valid");
        let mut sw = CompactFairSlidingWindow::new(cfg, Euclidean, 1e-4, 1e4)
            .expect("valid");
        for &(x, y, c) in &pts {
            sw.insert(Colored::new(EuclidPoint::new(vec![x, y]), c as u32));
        }
        sw.check_invariants().map_err(TestCaseError::fail)?;
        let sol = sw.query().expect("non-empty window");
        let mut counts = vec![0usize; caps.len()];
        for c in &sol.centers {
            counts[c.color as usize] += 1;
        }
        for (&got, &cap) in counts.iter().zip(&caps) {
            prop_assert!(got <= cap);
        }
    }

    #[test]
    fn window_solution_radius_bounded_by_guess(
        pts in stream_strategy(),
        window in 4usize..40,
    ) {
        // Lemma 2 (P2) + Theorem 1: the true window radius is at most the
        // coreset radius + δγ̂; verify against an exact shadow window.
        let caps = vec![2usize, 2, 2];
        let delta = 1.0;
        let cfg = FairSWConfig::builder()
            .window_size(window)
            .capacities(caps.clone())
            .beta(2.0)
            .delta(delta)
            .build()
            .expect("valid");
        let mut sw = FairSlidingWindow::new(cfg, Euclidean, 1e-4, 1e4).expect("valid");
        let mut exact = ExactWindow::new(window);
        for &(x, y, c) in &pts {
            let p = Colored::new(EuclidPoint::new(vec![x, y]), c as u32);
            sw.insert(p.clone());
            exact.push(p);
        }
        let sol = sw.query().expect("non-empty");
        let win = exact.to_vec();
        let inst = Instance::new(&Euclidean, &win, &caps);
        let true_radius = inst.radius_of(&sol.centers);
        prop_assert!(
            true_radius <= sol.coreset_radius + delta * sol.guess + 1e-9,
            "window radius {} > coreset {} + δγ̂ {}",
            true_radius, sol.coreset_radius, delta * sol.guess
        );
    }
}

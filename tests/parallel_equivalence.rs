//! Differential-testing harness for the parallel execution layer.
//!
//! The per-guess states of every variant are mutually independent, so a
//! parallel run must be **bit-identical** to a sequential one — not
//! "close", identical: same winning guess, same centers, same radius
//! bits, same extras, same per-guess memory accounting. This suite
//! enforces that for all five variants across the fill/slide/drift
//! scenario matrix, for both per-point `insert` and batched
//! `insert_batch`, with queries compared at several checkpoints
//! mid-stream (not just at the end). A final battery checks that
//! [`run_fleet`] answers exactly like driving each engine alone.
//!
//! Thread counts under test: 1 (sequential, the reference) vs 4.

use fairsw::prelude::*;

const WINDOW: usize = 48;
const CAPS: [usize; 2] = [2, 1];
const DMIN: f64 = 1e-4;
const DMAX: f64 = 1e4;
const THREADS: usize = 4;

/// Builds every variant at a given thread count.
fn variants(threads: usize) -> Vec<(&'static str, WindowEngine<Euclidean>)> {
    let base = || {
        EngineBuilder::new()
            .window_size(WINDOW)
            .capacities(CAPS.to_vec())
            .beta(2.0)
            .delta(1.0)
            .threads(threads)
    };
    vec![
        (
            "fixed",
            base().fixed(DMIN, DMAX).build(Euclidean).expect("valid"),
        ),
        (
            "oblivious",
            base().oblivious().build(Euclidean).expect("valid"),
        ),
        (
            "compact",
            base().compact(DMIN, DMAX).build(Euclidean).expect("valid"),
        ),
        (
            "robust",
            base()
                .robust(2, DMIN, DMAX)
                .build(Euclidean)
                .expect("valid"),
        ),
        (
            "matroid",
            base()
                .matroid(
                    PartitionMatroid::new(CAPS.to_vec()).expect("valid caps"),
                    DMIN,
                    DMAX,
                )
                .build(Euclidean)
                .expect("valid"),
        ),
    ]
}

fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
    Colored::new(EuclidPoint::new(vec![x]), c)
}

/// The scenario matrix: name → point stream.
fn scenarios() -> Vec<(&'static str, Vec<Colored<EuclidPoint>>)> {
    let n = WINDOW as u64;
    // Fill: only half a window of two-cluster data.
    let fill: Vec<_> = (0..n / 2)
        .map(|i| {
            let base = if i % 2 == 0 { 0.0 } else { 100.0 };
            cp(
                base + (i as f64 * 0.618_033_988_7).fract() * 2.0,
                (i % 3 == 0) as u32,
            )
        })
        .collect();
    // Slide: five windows of steady two-cluster data with a few spikes
    // (so the robust variant has genuine outliers to price out).
    let slide: Vec<_> = (0..5 * n)
        .map(|i| {
            if i % 71 == 0 {
                cp(5e3 + i as f64, (i % 3 == 0) as u32)
            } else {
                let base = if i % 2 == 0 { 0.0 } else { 250.0 };
                cp(
                    base + (i as f64 * 0.324_717_957_2).fract() * 3.0,
                    (i % 3 == 0) as u32,
                )
            }
        })
        .collect();
    // Drift: coarse scale, then everything collapses to a fine scale —
    // exercises the oblivious variant's guess spawn/retire under a pool.
    let drift: Vec<_> = (0..2 * n)
        .map(|i| {
            let base = (i % 3) as f64 * 800.0;
            cp(
                base + (i as f64 * 0.445_041_867_9).fract() * 5.0,
                (i % 3 == 0) as u32,
            )
        })
        .chain((0..3 * n).map(|i| {
            cp(
                500.0 + (i as f64 * 0.618_033_988_7).fract() * 1.5,
                (i % 3 == 0) as u32,
            )
        }))
        .collect();
    vec![("fill", fill), ("slide", slide), ("drift", drift)]
}

/// Bit-level equality of two solutions.
fn assert_solutions_identical(ctx: &str, a: &Solution<EuclidPoint>, b: &Solution<EuclidPoint>) {
    assert_eq!(
        a.guess.to_bits(),
        b.guess.to_bits(),
        "{ctx}: winning guess diverged ({} vs {})",
        a.guess,
        b.guess
    );
    assert_eq!(a.coreset_size, b.coreset_size, "{ctx}: coreset size");
    assert_eq!(
        a.coreset_radius.to_bits(),
        b.coreset_radius.to_bits(),
        "{ctx}: radius bits diverged ({} vs {})",
        a.coreset_radius,
        b.coreset_radius
    );
    assert_centers_identical(ctx, "centers", &a.centers, &b.centers);
    match (&a.extras, &b.extras) {
        (SolutionExtras::None, SolutionExtras::None) => {}
        (SolutionExtras::Robust { outliers: oa }, SolutionExtras::Robust { outliers: ob }) => {
            assert_centers_identical(ctx, "outliers", oa, ob)
        }
        (
            SolutionExtras::Oblivious {
                mature: ma,
                fallback: fa,
                guess_range: ra,
            },
            SolutionExtras::Oblivious {
                mature: mb,
                fallback: fb,
                guess_range: rb,
            },
        ) => {
            assert_eq!(ma, mb, "{ctx}: maturity flag diverged");
            assert_eq!(fa, fb, "{ctx}: fallback flag diverged");
            assert_eq!(
                ra.map(|(lo, hi)| (lo.to_bits(), hi.to_bits())),
                rb.map(|(lo, hi)| (lo.to_bits(), hi.to_bits())),
                "{ctx}: guess range diverged"
            );
        }
        (ea, eb) => panic!("{ctx}: extras kind diverged ({ea:?} vs {eb:?})"),
    }
}

fn assert_centers_identical(
    ctx: &str,
    what: &str,
    a: &[Colored<EuclidPoint>],
    b: &[Colored<EuclidPoint>],
) {
    assert_eq!(a.len(), b.len(), "{ctx}: {what} count diverged");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.color, y.color, "{ctx}: {what}[{i}] color diverged");
        assert_eq!(
            x.point.coords(),
            y.point.coords(),
            "{ctx}: {what}[{i}] coordinates diverged"
        );
    }
}

/// Bit-level equality of the memory accounting (handle entries and the
/// interned arena's deduplicated payload side).
fn assert_memory_identical(ctx: &str, a: &MemoryStats, b: &MemoryStats) {
    assert_eq!(a.auxiliary, b.auxiliary, "{ctx}: auxiliary storage");
    assert_eq!(
        a.unique_points, b.unique_points,
        "{ctx}: arena payload count diverged"
    );
    assert_eq!(
        a.payload_bytes, b.payload_bytes,
        "{ctx}: arena payload bytes diverged"
    );
    assert_eq!(
        a.per_guess.len(),
        b.per_guess.len(),
        "{ctx}: materialized guess count diverged"
    );
    for (ga, gb) in a.per_guess.iter().zip(&b.per_guess) {
        assert_eq!(
            ga.gamma.to_bits(),
            gb.gamma.to_bits(),
            "{ctx}: guess set diverged (γ {} vs {})",
            ga.gamma,
            gb.gamma
        );
        assert_eq!(
            ga.points, gb.points,
            "{ctx}: per-guess memory diverged at γ = {}",
            ga.gamma
        );
    }
}

/// Compares the two engines' full observable state.
fn assert_engines_agree(ctx: &str, seq: &WindowEngine<Euclidean>, par: &WindowEngine<Euclidean>) {
    assert_eq!(seq.time(), par.time(), "{ctx}: arrival counter");
    assert_eq!(seq.stored_points(), par.stored_points(), "{ctx}: memory");
    assert_memory_identical(ctx, &seq.memory_stats(), &par.memory_stats());
    match (seq.query(), par.query()) {
        (Ok(a), Ok(b)) => assert_solutions_identical(ctx, &a, &b),
        (Err(ea), Err(eb)) => assert_eq!(
            format!("{ea}"),
            format!("{eb}"),
            "{ctx}: error kinds diverged"
        ),
        (a, b) => panic!("{ctx}: outcome kind diverged ({a:?} vs {b:?})"),
    }
}

#[test]
fn per_point_inserts_are_bit_identical_across_thread_counts() {
    for (scenario, stream) in scenarios() {
        let mut pairs: Vec<_> = variants(1)
            .into_iter()
            .zip(variants(THREADS))
            .map(|((name, seq), (_, par))| (name, seq, par))
            .collect();
        assert!(pairs.iter().all(|(_, _, par)| par.threads() == THREADS));
        let checkpoints = [stream.len() / 3, 2 * stream.len() / 3, stream.len()];
        for (i, p) in stream.iter().enumerate() {
            for (name, seq, par) in &mut pairs {
                seq.insert(p.clone());
                par.insert(p.clone());
                let _ = name;
            }
            if checkpoints.contains(&(i + 1)) {
                for (name, seq, par) in &pairs {
                    let ctx = format!("{name}/{scenario} at t={}", i + 1);
                    assert_engines_agree(&ctx, seq, par);
                    par.check_invariants()
                        .unwrap_or_else(|e| panic!("{ctx}: invariant violated: {e}"));
                }
            }
        }
    }
}

#[test]
fn batched_parallel_inserts_match_sequential_per_point_inserts() {
    for (scenario, stream) in scenarios() {
        for ((name, mut seq), (_, mut par)) in variants(1).into_iter().zip(variants(THREADS)) {
            for p in &stream {
                seq.insert(p.clone());
            }
            // Uneven batch sizes so batch boundaries cross window edges.
            for chunk in stream.chunks(WINDOW / 3 + 1) {
                par.insert_batch(chunk.iter().cloned());
            }
            let ctx = format!("{name}/{scenario} (batched)");
            assert_engines_agree(&ctx, &seq, &par);
        }
    }
}

#[test]
fn run_fleet_matches_driving_each_engine_alone() {
    let (_, stream) = scenarios().remove(1); // slide: the longest stream
    let mut alone: Vec<WindowEngine<Euclidean>> = variants(1).into_iter().map(|(_, e)| e).collect();
    let mut fleet: Vec<WindowEngine<Euclidean>> =
        variants(THREADS).into_iter().map(|(_, e)| e).collect();

    let solo: Vec<_> = alone
        .iter_mut()
        .map(|e| {
            e.insert_batch(stream.iter().cloned());
            e.query()
        })
        .collect();
    let together = run_fleet(&mut fleet, &stream);

    assert_eq!(solo.len(), together.len());
    for ((a, b), (alone_e, fleet_e)) in solo.iter().zip(&together).zip(alone.iter().zip(&fleet)) {
        let ctx = format!("fleet/{}", alone_e.variant_name());
        match (a, b) {
            (Ok(a), Ok(b)) => assert_solutions_identical(&ctx, a, b),
            (a, b) => panic!("{ctx}: outcome kind diverged ({a:?} vs {b:?})"),
        }
        assert_memory_identical(&ctx, &alone_e.memory_stats(), &fleet_e.memory_stats());
    }
}

#[test]
fn explicit_solver_queries_agree_too() {
    // query_with (explicit Jones) through the concrete types: the
    // parallel scan must pick the same guess as the sequential one.
    let cfg = FairSWConfig::builder()
        .window_size(WINDOW)
        .capacities(CAPS.to_vec())
        .build()
        .expect("valid");
    let mut seq = FairSlidingWindow::new(cfg.clone(), Euclidean, DMIN, DMAX).expect("valid");
    let mut par = FairSlidingWindow::new(cfg, Euclidean, DMIN, DMAX)
        .expect("valid")
        .with_parallelism(ParallelismSpec::Threads(THREADS));
    for (_, stream) in scenarios() {
        for p in stream {
            seq.insert(p.clone());
            par.insert(p);
        }
        let (a, b) = (
            seq.query_with(&Jones).expect("answer"),
            par.query_with(&Jones).expect("answer"),
        );
        assert_solutions_identical("fixed/query_with", &a, &b);
    }
}

//! Trait-conformance suite: one scenario matrix, five variants, zero
//! `dyn`.
//!
//! Every sliding-window variant implements `SlidingWindowClustering`;
//! this suite drives each of them through the same generic scenarios
//! (fill, slide, drift, fairness budgets, invariant checks) so that the
//! shared contract — arrival counting, bounded memory, fair answers,
//! structural invariants, consistent memory accounting — is enforced
//! uniformly. A second battery checks that the default `insert_batch`
//! is observationally equal to repeated `insert`.

use fairsw::prelude::*;

const WINDOW: usize = 60;
const CAPS: [usize; 2] = [2, 1];
const DMIN: f64 = 1e-4;
const DMAX: f64 = 1e4;

/// Constructs every variant for the shared scenario configuration and
/// hands each to `run` (generic dispatch — each call monomorphizes).
fn for_each_variant(run: impl Fn(&str, &mut dyn FnMut() -> WindowEngine<Euclidean>)) {
    let base = || {
        EngineBuilder::new()
            .window_size(WINDOW)
            .capacities(CAPS.to_vec())
            .beta(2.0)
            .delta(1.0)
    };
    run("fixed", &mut || {
        base().fixed(DMIN, DMAX).build(Euclidean).expect("valid")
    });
    run("oblivious", &mut || {
        base().oblivious().build(Euclidean).expect("valid")
    });
    run("compact", &mut || {
        base().compact(DMIN, DMAX).build(Euclidean).expect("valid")
    });
    run("robust", &mut || {
        base()
            .robust(2, DMIN, DMAX)
            .build(Euclidean)
            .expect("valid")
    });
    run("matroid", &mut || {
        base()
            .matroid(
                PartitionMatroid::new(CAPS.to_vec()).expect("valid caps"),
                DMIN,
                DMAX,
            )
            .build(Euclidean)
            .expect("valid")
    });
}

fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
    Colored::new(EuclidPoint::new(vec![x]), c)
}

/// A deterministic two-cluster stream with a skewed color mix (~1/3 of
/// the points carry color 1, matching caps [2, 1]).
fn stream_point(i: u64, scale: f64) -> Colored<EuclidPoint> {
    let color = i.is_multiple_of(3) as u32;
    let base = if i.is_multiple_of(2) { 0.0 } else { scale };
    cp(
        base + (i as f64 * 0.618_033_988_7).fract() * scale * 0.01,
        color,
    )
}

/// The shared scenario body, generic over the implementor.
fn drive<A: SlidingWindowClustering<Euclidean>>(
    name: &str,
    algo: &mut A,
    points: impl IntoIterator<Item = Colored<EuclidPoint>>,
    check_every: u64,
) {
    for p in points {
        algo.insert(p);
        if algo.time() % check_every == 0 {
            algo.check_invariants()
                .unwrap_or_else(|e| panic!("{name}: invariant violated at t={}: {e}", algo.time()));
        }
    }
}

/// Asserts the answer respects the [2, 1] budgets and reports sane
/// metadata.
fn assert_solution_sane(name: &str, sol: &Solution<EuclidPoint>) {
    assert!(!sol.centers.is_empty(), "{name}: empty center set");
    let c0 = sol.centers.iter().filter(|c| c.color == 0).count();
    let c1 = sol.centers.iter().filter(|c| c.color == 1).count();
    assert!(
        c0 <= CAPS[0] && c1 <= CAPS[1],
        "{name}: budgets violated ({c0}, {c1})"
    );
    assert!(sol.coreset_size > 0, "{name}: empty coreset");
    assert!(
        sol.coreset_radius.is_finite() && sol.coreset_radius >= 0.0,
        "{name}: bad radius {}",
        sol.coreset_radius
    );
}

#[test]
fn empty_window_errors_uniformly() {
    for_each_variant(|name, make| {
        let engine = make();
        assert!(
            matches!(engine.query(), Err(QueryError::EmptyWindow)),
            "{name}: empty query must fail with EmptyWindow"
        );
        assert_eq!(engine.time(), 0, "{name}");
        assert_eq!(engine.window_size(), WINDOW, "{name}");
    });
}

#[test]
fn fill_scenario_answers_before_window_is_full() {
    for_each_variant(|name, make| {
        let mut engine = make();
        // Only half a window of data: every variant must already answer.
        drive(
            name,
            &mut engine,
            (0..WINDOW as u64 / 2).map(|i| stream_point(i, 100.0)),
            7,
        );
        assert_eq!(engine.time(), WINDOW as u64 / 2, "{name}: arrival counter");
        let sol = engine.query().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_solution_sane(name, &sol);
        engine.check_invariants().unwrap();
    });
}

#[test]
fn slide_scenario_keeps_memory_bounded() {
    for_each_variant(|name, make| {
        let mut engine = make();
        let mut fill_peak = 0usize;
        for i in 0..(8 * WINDOW as u64) {
            engine.insert(stream_point(i, 100.0));
            if i < WINDOW as u64 {
                fill_peak = fill_peak.max(engine.stored_points());
            }
        }
        engine.check_invariants().unwrap();
        assert!(
            engine.stored_points() <= 2 * fill_peak + 64,
            "{name}: memory grew with stream length ({} vs fill peak {})",
            engine.stored_points(),
            fill_peak
        );
        let sol = engine.query().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_solution_sane(name, &sol);
    });
}

#[test]
fn drift_scenario_follows_the_window_scale() {
    for_each_variant(|name, make| {
        let mut engine = make();
        // Phase 1: clusters separated by 1000; phase 2: everything within
        // ~2 units. After phase 2 fills the window, the answer must be at
        // the fine scale.
        drive(
            name,
            &mut engine,
            (0..200u64).map(|i| stream_point(i, 1000.0)),
            50,
        );
        drive(
            name,
            &mut engine,
            (0..3 * WINDOW as u64).map(|i| {
                cp(
                    500.0 + (i as f64 * 0.324_7).fract() * 2.0,
                    (i % 3 == 0) as u32,
                )
            }),
            50,
        );
        let sol = engine.query().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_solution_sane(name, &sol);
        assert!(
            sol.coreset_radius <= 16.0,
            "{name}: radius {} ignores the drift to the fine scale",
            sol.coreset_radius
        );
    });
}

#[test]
fn fairness_budgets_respected_under_skew() {
    for_each_variant(|name, make| {
        let mut engine = make();
        // Color 1 is rare (every 7th point) yet capped at 1; color 0
        // spread over three clusters with cap 2.
        drive(
            name,
            &mut engine,
            (0..4 * WINDOW as u64).map(|i| {
                let color = (i % 7 == 0) as u32;
                let base = (i % 3) as f64 * 300.0;
                cp(base + (i as f64 * 0.445).fract() * 3.0, color)
            }),
            25,
        );
        let sol = engine.query().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_solution_sane(name, &sol);
    });
}

#[test]
fn memory_stats_consistent_with_stored_points() {
    for_each_variant(|name, make| {
        let mut engine = make();
        drive(
            name,
            &mut engine,
            (0..3 * WINDOW as u64).map(|i| stream_point(i, 250.0)),
            40,
        );
        let stats = engine.memory_stats();
        assert_eq!(
            stats.stored_points(),
            engine.stored_points(),
            "{name}: memory_stats total disagrees with stored_points"
        );
        assert_eq!(
            stats.num_guesses(),
            engine.num_guesses(),
            "{name}: num_guesses mismatch"
        );
        assert!(stats.num_guesses() > 0, "{name}: no guesses materialized");
        // Per-guess entries are in ascending-γ order and all live guesses
        // store a bounded number of points.
        for pair in stats.per_guess.windows(2) {
            assert!(pair[0].gamma < pair[1].gamma, "{name}: γ order");
        }
    });
}

#[test]
fn insert_batch_equals_repeated_insert() {
    for_each_variant(|name, make| {
        let stream: Vec<_> = (0..3 * WINDOW as u64)
            .map(|i| stream_point(i, 400.0))
            .collect();
        let mut one_by_one = make();
        let mut batched = make();
        for p in &stream {
            one_by_one.insert(p.clone());
        }
        batched.insert_batch(stream);
        assert_eq!(one_by_one.time(), batched.time(), "{name}: time diverged");
        assert_eq!(
            one_by_one.stored_points(),
            batched.stored_points(),
            "{name}: memory diverged"
        );
        let (sa, sb) = (one_by_one.memory_stats(), batched.memory_stats());
        assert_eq!(sa.per_guess.len(), sb.per_guess.len(), "{name}");
        for (a, b) in sa.per_guess.iter().zip(&sb.per_guess) {
            assert_eq!(a.gamma, b.gamma, "{name}: guess set diverged");
            assert_eq!(a.points, b.points, "{name}: per-guess memory diverged");
        }
        let qa = one_by_one.query().unwrap_or_else(|e| panic!("{name}: {e}"));
        let qb = batched.query().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(qa.guess, qb.guess, "{name}: winning guess diverged");
        assert_eq!(qa.coreset_size, qb.coreset_size, "{name}");
        assert_eq!(qa.centers.len(), qb.centers.len(), "{name}");
        assert!(
            (qa.coreset_radius - qb.coreset_radius).abs() < 1e-12,
            "{name}: radius diverged"
        );
    });
}

/// The same generic body applied to the five *concrete* types (no
/// `WindowEngine` in between): the trait bounds alone carry the scenario.
#[test]
fn concrete_types_conform_generically() {
    fn scenario<A: SlidingWindowClustering<Euclidean>>(name: &str, algo: &mut A) {
        drive(
            name,
            algo,
            (0..3 * WINDOW as u64).map(|i| stream_point(i, 150.0)),
            30,
        );
        assert_eq!(algo.time(), 3 * WINDOW as u64, "{name}");
        assert_eq!(algo.window_size(), WINDOW, "{name}");
        let sol = algo.query().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_solution_sane(name, &sol);
        assert_eq!(
            algo.memory_stats().stored_points(),
            algo.stored_points(),
            "{name}"
        );
    }

    let cfg = FairSWConfig::builder()
        .window_size(WINDOW)
        .capacities(CAPS.to_vec())
        .build()
        .expect("valid");
    scenario(
        "FairSlidingWindow",
        &mut FairSlidingWindow::new(cfg.clone(), Euclidean, DMIN, DMAX).expect("valid"),
    );
    scenario(
        "ObliviousFairSlidingWindow",
        &mut ObliviousFairSlidingWindow::new(cfg.clone(), Euclidean).expect("valid"),
    );
    scenario(
        "CompactFairSlidingWindow",
        &mut CompactFairSlidingWindow::new(cfg.clone(), Euclidean, DMIN, DMAX).expect("valid"),
    );
    scenario(
        "RobustFairSlidingWindow",
        &mut RobustFairSlidingWindow::new(cfg.clone(), 2, Euclidean, DMIN, DMAX).expect("valid"),
    );
    scenario(
        "MatroidSlidingWindow",
        &mut MatroidSlidingWindow::new(
            Euclidean,
            PartitionMatroid::new(CAPS.to_vec()).expect("valid"),
            WINDOW,
            cfg.beta,
            cfg.delta,
            DMIN,
            DMAX,
        )
        .expect("valid"),
    );
}

#[test]
fn extras_carry_variant_provenance() {
    for_each_variant(|name, make| {
        let mut engine = make();
        drive(
            name,
            &mut engine,
            (0..2 * WINDOW as u64).map(|i| stream_point(i, 100.0)),
            60,
        );
        let sol = engine.query().unwrap_or_else(|e| panic!("{name}: {e}"));
        match (name, &sol.extras) {
            ("robust", SolutionExtras::Robust { outliers }) => {
                assert!(outliers.len() <= 2, "robust: too many outliers");
            }
            ("oblivious", SolutionExtras::Oblivious { guess_range, .. }) => {
                assert!(guess_range.is_some(), "oblivious: no guess range recorded");
            }
            ("fixed" | "compact" | "matroid", SolutionExtras::None) => {}
            (name, extras) => panic!("{name}: unexpected extras {extras:?}"),
        }
    });
}

//! Integration: the algorithm is metric-generic — run it under the
//! Angular metric on directional data (e.g. normalized topic vectors).
//!
//! The paper states its results for general metric spaces; everything in
//! the workspace is generic over `Metric`, so swapping Euclidean for
//! Angular must Just Work: same invariants, fair answers, sensible
//! cluster recovery on the unit sphere.

use fairsw::prelude::*;

/// A unit vector at angle `theta` (2-D directional data).
fn dir(theta: f64, color: u32) -> Colored<EuclidPoint> {
    Colored::new(
        EuclidPoint::new(vec![theta.cos() * 3.0, theta.sin() * 3.0]),
        color,
    )
}

#[test]
fn angular_clusters_recovered() {
    // Three angular clusters at 0°, 120°, 240°, each with its own color;
    // Angular distance ignores the varying magnitudes below.
    let cfg = FairSWConfig::builder()
        .window_size(120)
        .capacities(vec![1, 1, 1])
        .beta(2.0)
        .delta(1.0)
        .build()
        .expect("valid");
    // Angular distances live in [0, 1]: a narrow lattice suffices.
    let mut sw = FairSlidingWindow::new(cfg, Angular, 1e-4, 1.0).expect("valid");
    let mut exact = ExactWindow::new(120);
    for i in 0..360u64 {
        let base = (i % 3) as f64 * (2.0 * std::f64::consts::PI / 3.0);
        let jitter = ((i as f64) * 0.618_033_988_7).fract() * 0.1;
        let p = dir(base + jitter, (i % 3) as u32);
        sw.insert(p.clone());
        exact.push(p);
    }
    sw.check_invariants().expect("structural invariants hold");
    let sol = sw.query().expect("non-empty");
    assert_eq!(sol.centers.len(), 3, "one center per angular cluster");
    // True radius over the window under the angular metric: within the
    // jitter scale (0.1 rad ≈ 0.032 normalized), far below the 1/3-turn
    // cluster separation.
    let caps = [1usize, 1, 1];
    let win = exact.to_vec();
    let inst = Instance::new(&Angular, &win, &caps);
    let r = inst.radius_of(&sol.centers);
    assert!(r < 0.1, "angular radius {r} too large");
    assert!(inst.is_fair(&sol.centers));
}

#[test]
fn angular_scale_invariance() {
    // The same directions with wildly different magnitudes must yield the
    // same structures (Angular ignores scale).
    let cfg = FairSWConfig::builder()
        .window_size(40)
        .capacities(vec![2])
        .beta(2.0)
        .delta(1.0)
        .build()
        .expect("valid");
    let mut a = FairSlidingWindow::new(cfg.clone(), Angular, 1e-4, 1.0).expect("valid");
    let mut b = FairSlidingWindow::new(cfg, Angular, 1e-4, 1.0).expect("valid");
    for i in 0..100u64 {
        let theta = ((i as f64) * 0.324_717_957_2).fract() * std::f64::consts::PI;
        let p1 = Colored::new(EuclidPoint::new(vec![theta.cos(), theta.sin()]), 0);
        let scale = 10f64.powi((i % 5) as i32);
        let p2 = Colored::new(
            EuclidPoint::new(vec![theta.cos() * scale, theta.sin() * scale]),
            0,
        );
        a.insert(p1);
        b.insert(p2);
    }
    assert_eq!(a.stored_points(), b.stored_points());
    let sa = a.query().expect("ok");
    let sb = b.query().expect("ok");
    assert_eq!(sa.guess, sb.guess);
    assert!((sa.coreset_radius - sb.coreset_radius).abs() < 1e-9);
}

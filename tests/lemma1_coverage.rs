//! Integration: the coverage invariants of Lemma 1, checked against an
//! exact shadow window.
//!
//! For every *valid* guess (`|AV| ≤ k`) and at every time step, Lemma 1
//! guarantees that each window point lies within `4γ` of the validation
//! representatives `RV` and within `δγ` of the coreset `R`. These are the
//! load-bearing facts behind Theorem 1; here we verify them empirically
//! on adversarially scaled streams.

use fairsw::prelude::*;
use fairsw_datasets::{blobs, phones_like, BlobsParams};

fn check_coverage(
    points: &[Colored<EuclidPoint>],
    window: usize,
    caps: &[usize],
    delta: f64,
    dmin: f64,
    dmax: f64,
    check_every: usize,
) {
    let k: usize = caps.iter().sum();
    let cfg = FairSWConfig::builder()
        .window_size(window)
        .capacities(caps.to_vec())
        .beta(2.0)
        .delta(delta)
        .build()
        .expect("valid");
    let mut sw = FairSlidingWindow::new(cfg, Euclidean, dmin, dmax).expect("valid");
    let mut exact = ExactWindow::new(window);
    let m = Euclidean;

    for (i, p) in points.iter().enumerate() {
        sw.insert(p.clone());
        exact.push(p.clone());
        if (i + 1) % check_every != 0 {
            continue;
        }
        sw.check_invariants().expect("structural invariants");
        let res = sw.resolver();
        for g in sw.guesses() {
            if g.av_len() > k {
                continue; // Lemma 1 case 2 needs arrival bookkeeping; we
                          // verify the valid-guess case that Query relies on.
            }
            let gamma = g.gamma();
            let rv: Vec<&EuclidPoint> = g.rv_points(res).collect();
            let coreset = g.coreset(res);
            for q in exact.points() {
                let d_rv = m.dist_to_set(&q.point, rv.iter().copied());
                assert!(
                    d_rv <= 4.0 * gamma + 1e-9,
                    "t={}: point at {:.4} > 4γ from RV (γ={gamma})",
                    i + 1,
                    d_rv
                );
                let d_r = m.dist_to_set(&q.point, coreset.iter().map(|c| &c.point));
                assert!(
                    d_r <= delta * gamma + 1e-9,
                    "t={}: point at {:.4} > δγ from R (γ={gamma}, δ={delta})",
                    i + 1,
                    d_r
                );
            }
        }
    }
}

#[test]
fn coverage_on_trajectory_data() {
    let ds = phones_like(1_200, 21);
    check_coverage(&ds.points, 300, &[1, 1, 1, 1, 1, 1, 1], 1.0, 1e-4, 1e3, 97);
}

#[test]
fn coverage_on_blobs_fine_delta() {
    let ds = blobs(900, 3, BlobsParams::default(), 22);
    check_coverage(
        &ds.points,
        250,
        &[2, 2, 1, 1, 1, 1, 1],
        0.5,
        1e-3,
        500.0,
        83,
    );
}

#[test]
fn coverage_on_blobs_coarse_delta() {
    let ds = blobs(900, 2, BlobsParams::default(), 23);
    check_coverage(&ds.points, 250, &[1; 7], 4.0, 1e-3, 500.0, 83);
}

#[test]
fn coverage_with_tiny_window() {
    // Stress the expiry path: window of 20 over fast-moving data.
    let ds = phones_like(600, 24);
    check_coverage(&ds.points, 20, &[1, 1, 1, 1, 1, 1, 1], 1.0, 1e-4, 1e3, 13);
}

#[test]
fn fairness_of_coreset_composition() {
    // Per-attractor, per-color caps mean the coreset can always seed a
    // fair solution: check the coreset itself never leaves a color that
    // exists in the window entirely unrepresented when budgets allow.
    let ds = blobs(800, 2, BlobsParams::default(), 25);
    let caps = [2usize, 2, 2, 2, 2, 2, 2];
    let k: usize = caps.iter().sum();
    let cfg = FairSWConfig::builder()
        .window_size(200)
        .capacities(caps.to_vec())
        .delta(1.0)
        .build()
        .expect("valid");
    let mut sw = FairSlidingWindow::new(cfg, Euclidean, 1e-3, 500.0).expect("valid");
    let mut exact = ExactWindow::new(200);
    for p in &ds.points {
        sw.insert(p.clone());
        exact.push(p.clone());
    }
    let window_colors: std::collections::HashSet<u32> = exact.points().map(|p| p.color).collect();
    for g in sw.guesses() {
        if g.av_len() > k {
            continue;
        }
        let coreset_colors: std::collections::HashSet<u32> =
            g.coreset(sw.resolver()).iter().map(|c| c.color).collect();
        for c in &window_colors {
            assert!(
                coreset_colors.contains(c),
                "color {c} present in window but absent from coreset at γ={}",
                g.gamma()
            );
        }
    }
}

//! Integration: the end-to-end approximation guarantee of Theorem 1,
//! checked against exhaustive optima on brute-forceable windows.
//!
//! Theorem 1: with `δ = ε/((1+β)(1+2α))`, Query returns an
//! `(α+ε)`-approximation. Unfolding the proof, for *any* admissible `δ`
//! the returned radius is at most
//! `α·OPT + (1+2α)·δ·γ̂` with `γ̂ ≤ (1+β)·OPT`, i.e. a multiplicative
//! factor `α + (1+2α)(1+β)δ`. Using the exact solver (`α = 1`, feasible
//! because the windows here are tiny) and `β = 2`, the factor is
//! `1 + 9δ`. These tests stream adversarially scaled data, query at every
//! step once the window fills, and compare against the exact fair optimum
//! of the exact window.

use fairsw::prelude::*;
use fairsw::sequential::brute::exact_fair_center;

fn theory_run(xs: &[(f64, u32)], window: usize, caps: &[usize], delta: f64, beta: f64) {
    let factor = 1.0 + (1.0 + 2.0) * (1.0 + beta) * delta; // α = 1
    let cfg = FairSWConfig::builder()
        .window_size(window)
        .capacities(caps.to_vec())
        .beta(beta)
        .delta(delta)
        .build()
        .expect("valid");
    let mut sw = FairSlidingWindow::new(cfg, Euclidean, 1e-4, 1e5).expect("valid");
    let mut exact = ExactWindow::new(window);
    let solver = ExactSolver::new();

    for (i, &(x, c)) in xs.iter().enumerate() {
        let p = Colored::new(EuclidPoint::new(vec![x]), c);
        sw.insert(p.clone());
        exact.push(p);
        if i + 1 < window {
            continue;
        }
        let win = exact.to_vec();
        let inst = Instance::new(&Euclidean, &win, caps);
        let opt = exact_fair_center(&inst).expect("tiny window").radius;
        let sol = sw.query_with(&solver).expect("query succeeds");
        let streaming_radius = inst.radius_of(&sol.centers);
        assert!(
            inst.is_fair(&sol.centers),
            "t={}: unfair streaming answer",
            i + 1
        );
        assert!(
            streaming_radius <= factor * opt + 1e-9,
            "t={}: streaming {} > {:.2}×OPT ({} × {})",
            i + 1,
            streaming_radius,
            factor,
            factor,
            opt
        );
    }
}

#[test]
fn theorem1_bound_on_multiscale_line() {
    // Values spanning four orders of magnitude with two colors.
    let xs: Vec<(f64, u32)> = (0..60u64)
        .map(|i| {
            let scale = [0.01, 1.0, 100.0][(i / 20) as usize % 3];
            let x = (i as f64 * 0.618_033_988_7).fract() * scale + scale;
            (x, (i % 2) as u32)
        })
        .collect();
    theory_run(&xs, 10, &[1, 1], 0.5, 2.0);
}

#[test]
fn theorem1_bound_fine_delta() {
    // δ = 0.1 → factor 1.9: the streaming answer must be close to OPT.
    let xs: Vec<(f64, u32)> = (0..50u64)
        .map(|i| ((i as f64 * 0.324_717_957_2).fract() * 50.0, (i % 3) as u32))
        .collect();
    theory_run(&xs, 9, &[1, 1, 1], 0.1, 2.0);
}

#[test]
fn theorem1_bound_with_expiry_churn() {
    // Tiny window (5) over drifting data: stresses expiry and cleanup.
    let xs: Vec<(f64, u32)> = (0..80u64)
        .map(|i| (i as f64 * 3.7 + (i as f64 * 0.7).fract(), (i % 2) as u32))
        .collect();
    theory_run(&xs, 5, &[2, 1], 1.0, 2.0);
}

#[test]
fn epsilon_api_matches_theorem() {
    // The builder's epsilon() must produce the Theorem 1 delta for Jones
    // (α = 3): δ = ε / ((1+β)(1+2α)) = ε / 21 at β = 2.
    let cfg = FairSWConfig::builder()
        .window_size(10)
        .capacities(vec![1])
        .beta(2.0)
        .epsilon(0.42)
        .build()
        .expect("valid");
    assert!((cfg.delta - 0.02).abs() < 1e-12);
}

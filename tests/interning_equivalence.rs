//! Differential-testing harness for the interned `PointStore` arena.
//!
//! The arena refactor rewrote the storage layer under every variant —
//! guesses hold 4-byte handles, payloads live once in a shared store
//! with refcounted early reclaim plus window-expiry epoch GC — while the
//! *algorithmic* behavior must be exactly the seed's. Three lines of
//! evidence:
//!
//! 1. **An owned-point oracle.** A direct, self-contained port of the
//!    pre-refactor `GuessState` (every family clones its own point) is
//!    driven in lockstep with [`FairSlidingWindow`] over the
//!    fill/slide/drift scenario matrix; per-guess families, memory
//!    counts and query answers must agree to the bit at every
//!    checkpoint.
//! 2. **Thread-count differentials.** All five variants at threads 1 vs
//!    4 (per-point and batched lanes) — the PR 2 harness pattern —
//!    additionally comparing the new arena accounting
//!    (`unique_points`, `payload_bytes`), which must be deterministic
//!    under the parallel release/reclaim protocol.
//! 3. **Byte-level memory bounds.** The acceptance criterion of the
//!    refactor: resident payloads are `O(Σ coreset sizes)` — never more
//!    payloads than handle entries, bounded by the window, and a
//!    several-fold dedup on multi-guess workloads — plus snapshot
//!    roundtrips that carry the deduplicated footprint through the
//!    store section.

use fairsw::prelude::*;
use fairsw::stream::Lattice;
use std::collections::{BTreeMap, HashMap, VecDeque};

const WINDOW: usize = 48;
const CAPS: [usize; 2] = [2, 1];
const DMIN: f64 = 1e-4;
const DMAX: f64 = 1e4;

fn cp(x: f64, c: u32) -> Colored<EuclidPoint> {
    Colored::new(EuclidPoint::new(vec![x]), c)
}

/// The scenario matrix: name → point stream (fill / slide+spikes /
/// scale drift, the same shapes the parallel harness uses).
fn scenarios() -> Vec<(&'static str, Vec<Colored<EuclidPoint>>)> {
    let n = WINDOW as u64;
    let fill: Vec<_> = (0..n / 2)
        .map(|i| {
            let base = if i % 2 == 0 { 0.0 } else { 100.0 };
            cp(
                base + (i as f64 * 0.618_033_988_7).fract() * 2.0,
                (i % 3 == 0) as u32,
            )
        })
        .collect();
    let slide: Vec<_> = (0..5 * n)
        .map(|i| {
            if i % 71 == 0 {
                cp(5e3 + i as f64, (i % 3 == 0) as u32)
            } else {
                let base = if i % 2 == 0 { 0.0 } else { 250.0 };
                cp(
                    base + (i as f64 * 0.324_717_957_2).fract() * 3.0,
                    (i % 3 == 0) as u32,
                )
            }
        })
        .collect();
    let drift: Vec<_> = (0..2 * n)
        .map(|i| {
            let base = (i % 3) as f64 * 800.0;
            cp(
                base + (i as f64 * 0.445_041_867_9).fract() * 5.0,
                (i % 3 == 0) as u32,
            )
        })
        .chain((0..3 * n).map(|i| {
            cp(
                500.0 + (i as f64 * 0.618_033_988_7).fract() * 1.5,
                (i % 3 == 0) as u32,
            )
        }))
        .collect();
    vec![("fill", fill), ("slide", slide), ("drift", drift)]
}

// ======================================================================
// 1. The owned-point oracle: a faithful port of the pre-refactor
//    per-guess state. Every family stores its own point clone; no arena,
//    no handles, no reference counting.
// ======================================================================

struct OracleGuess {
    gamma: f64,
    av: BTreeMap<u64, EuclidPoint>,
    rep_of: HashMap<u64, u64>,
    rv: BTreeMap<u64, EuclidPoint>,
    a: BTreeMap<u64, EuclidPoint>,
    reps_c: HashMap<u64, Vec<VecDeque<u64>>>,
    r: BTreeMap<u64, (EuclidPoint, u32)>,
}

impl OracleGuess {
    fn new(gamma: f64) -> Self {
        OracleGuess {
            gamma,
            av: BTreeMap::new(),
            rep_of: HashMap::new(),
            rv: BTreeMap::new(),
            a: BTreeMap::new(),
            reps_c: HashMap::new(),
            r: BTreeMap::new(),
        }
    }

    fn stored_points(&self) -> usize {
        self.av.len() + self.rv.len() + self.a.len() + self.r.len()
    }

    fn expire(&mut self, te: u64) {
        if self.av.remove(&te).is_some() {
            self.rep_of.remove(&te);
        }
        self.rv.remove(&te);
        if self.a.remove(&te).is_some() {
            self.reps_c.remove(&te);
        }
        self.r.remove(&te);
    }

    fn update(&mut self, m: &Euclidean, t: u64, p: &EuclidPoint, color: u32, caps: &[usize]) {
        let k: usize = caps.iter().sum();
        let delta = 1.0;
        let two_gamma = 2.0 * self.gamma;
        let psi = self
            .av
            .iter()
            .find(|(_, v)| m.dist(p, v) <= two_gamma)
            .map(|(&tv, _)| tv);
        match psi {
            None => {
                self.av.insert(t, p.clone());
                self.rep_of.insert(t, t);
                self.rv.insert(t, p.clone());
                self.cleanup(k);
            }
            Some(v) => {
                let old = self.rep_of.insert(v, t).expect("live attractor has rep");
                self.rv.remove(&old);
                self.rv.insert(t, p.clone());
            }
        }
        let attach = delta * self.gamma / 2.0;
        let ci = color as usize;
        let phi = self
            .a
            .iter()
            .filter(|(_, q)| m.dist(p, q) <= attach)
            .min_by_key(|(&ta, _)| self.reps_c.get(&ta).map(|per| per[ci].len()).unwrap_or(0))
            .map(|(&ta, _)| ta);
        match phi {
            None => {
                self.a.insert(t, p.clone());
                let mut per = vec![VecDeque::new(); caps.len()];
                per[ci].push_back(t);
                self.reps_c.insert(t, per);
                self.r.insert(t, (p.clone(), color));
            }
            Some(a) => {
                let per = self.reps_c.get_mut(&a).expect("live attractor table");
                per[ci].push_back(t);
                self.r.insert(t, (p.clone(), color));
                if per[ci].len() > caps[ci] {
                    let orem = per[ci].pop_front().expect("over cap");
                    self.r.remove(&orem);
                }
            }
        }
    }

    fn cleanup(&mut self, k: usize) {
        if self.av.len() == k + 2 {
            let oldest = *self.av.keys().next().expect("non-empty");
            self.av.remove(&oldest);
            self.rep_of.remove(&oldest);
        }
        if self.av.len() == k + 1 {
            let tmin = *self.av.keys().next().expect("non-empty");
            let keep_a = self.a.split_off(&tmin);
            for (dead, _) in std::mem::replace(&mut self.a, keep_a) {
                self.reps_c.remove(&dead);
            }
            let keep_rv = self.rv.split_off(&tmin);
            self.rv = keep_rv;
            let keep_r = self.r.split_off(&tmin);
            self.r = keep_r;
        }
    }
}

struct OracleWindow {
    metric: Euclidean,
    caps: Vec<usize>,
    k: usize,
    n: u64,
    guesses: Vec<OracleGuess>,
    t: u64,
}

impl OracleWindow {
    fn new(n: usize, caps: &[usize], dmin: f64, dmax: f64) -> Self {
        let lattice = Lattice::new(2.0);
        let guesses = lattice
            .span(dmin, dmax)
            .map(|lvl| OracleGuess::new(lattice.value(lvl)))
            .collect();
        OracleWindow {
            metric: Euclidean,
            caps: caps.to_vec(),
            k: caps.iter().sum(),
            n: n as u64,
            guesses,
            t: 0,
        }
    }

    fn insert(&mut self, p: &Colored<EuclidPoint>) {
        self.t += 1;
        let t = self.t;
        let te = t.checked_sub(self.n);
        for g in &mut self.guesses {
            if let Some(te) = te {
                g.expire(te);
            }
            g.update(&self.metric, t, &p.point, p.color, &self.caps);
        }
    }

    fn query(&self) -> Option<(f64, usize, f64, Vec<Colored<EuclidPoint>>)> {
        for g in &self.guesses {
            if g.av.len() > self.k {
                continue;
            }
            let two_gamma = 2.0 * g.gamma;
            let mut packing: Vec<&EuclidPoint> = Vec::new();
            let mut overflow = false;
            for q in g.rv.values() {
                if self.metric.dist_to_set(q, packing.iter().copied()) > two_gamma {
                    packing.push(q);
                    if packing.len() > self.k {
                        overflow = true;
                        break;
                    }
                }
            }
            if overflow {
                continue;
            }
            let coreset: Vec<Colored<EuclidPoint>> =
                g.r.values()
                    .map(|(p, c)| Colored::new(p.clone(), *c))
                    .collect();
            let inst = Instance::new(&self.metric, &coreset, &self.caps);
            let sol = Jones.solve(&inst).expect("oracle solve");
            return Some((g.gamma, coreset.len(), sol.radius, sol.centers));
        }
        None
    }
}

/// Drives the interned implementation and the owned-point oracle in
/// lockstep, comparing families and answers at every checkpoint.
fn run_oracle_differential(scenario: &str, stream: &[Colored<EuclidPoint>]) {
    let cfg = FairSWConfig::builder()
        .window_size(WINDOW)
        .capacities(CAPS.to_vec())
        .beta(2.0)
        .delta(1.0)
        .build()
        .expect("valid config");
    let mut interned = FairSlidingWindow::new(cfg, Euclidean, DMIN, DMAX).expect("valid");
    let mut oracle = OracleWindow::new(WINDOW, &CAPS, DMIN, DMAX);

    let checkpoint = (stream.len() / 7).max(1);
    for (i, p) in stream.iter().enumerate() {
        interned.insert(p.clone());
        oracle.insert(p);
        if (i + 1) % checkpoint != 0 && i + 1 != stream.len() {
            continue;
        }
        let ctx = format!("{scenario} @ t={}", i + 1);
        interned.check_invariants().expect("invariants");
        // Families: same per-guess entry counts, same RV and coreset
        // sequences (arrival order on both sides).
        let res = interned.resolver();
        assert_eq!(interned.guesses().count(), oracle.guesses.len(), "{ctx}");
        for (g, og) in interned.guesses().zip(&oracle.guesses) {
            assert_eq!(g.gamma().to_bits(), og.gamma.to_bits(), "{ctx}: lattice");
            assert_eq!(g.av_len(), og.av.len(), "{ctx}: |AV| at γ={}", og.gamma);
            assert_eq!(
                g.stored_points(),
                og.stored_points(),
                "{ctx}: entries at γ={}",
                og.gamma
            );
            let rv_new: Vec<&EuclidPoint> = g.rv_points(res).collect();
            let rv_old: Vec<&EuclidPoint> = og.rv.values().collect();
            assert_eq!(rv_new.len(), rv_old.len(), "{ctx}: |RV| at γ={}", og.gamma);
            for (x, y) in rv_new.iter().zip(&rv_old) {
                assert_eq!(
                    x.coords(),
                    y.coords(),
                    "{ctx}: RV diverged at γ={}",
                    og.gamma
                );
            }
            let cs_new = g.coreset(res);
            let cs_old: Vec<(&EuclidPoint, u32)> = og.r.values().map(|(p, c)| (p, *c)).collect();
            assert_eq!(cs_new.len(), cs_old.len(), "{ctx}: |R| at γ={}", og.gamma);
            for (x, (yp, yc)) in cs_new.iter().zip(&cs_old) {
                assert_eq!(x.color, *yc, "{ctx}: R color diverged at γ={}", og.gamma);
                assert_eq!(
                    x.point.coords(),
                    yp.coords(),
                    "{ctx}: R diverged at γ={}",
                    og.gamma
                );
            }
        }
        // Answers.
        match (interned.query(), oracle.query()) {
            (Ok(sol), Some((gamma, size, radius, centers))) => {
                assert_eq!(sol.guess.to_bits(), gamma.to_bits(), "{ctx}: winning guess");
                assert_eq!(sol.coreset_size, size, "{ctx}: coreset size");
                assert_eq!(
                    sol.coreset_radius.to_bits(),
                    radius.to_bits(),
                    "{ctx}: radius bits"
                );
                assert_eq!(sol.centers.len(), centers.len(), "{ctx}: center count");
                for (x, y) in sol.centers.iter().zip(&centers) {
                    assert_eq!(x.color, y.color, "{ctx}: center color");
                    assert_eq!(x.point.coords(), y.point.coords(), "{ctx}: center coords");
                }
            }
            (Err(QueryError::NoValidGuess), None) => {}
            (a, b) => panic!("{ctx}: outcome kind diverged ({a:?} vs {:?})", b.is_some()),
        }
    }
}

#[test]
fn interned_matches_owned_point_oracle_on_fill() {
    let (name, stream) = &scenarios()[0];
    run_oracle_differential(name, stream);
}

#[test]
fn interned_matches_owned_point_oracle_on_slide() {
    let (name, stream) = &scenarios()[1];
    run_oracle_differential(name, stream);
}

#[test]
fn interned_matches_owned_point_oracle_on_drift() {
    let (name, stream) = &scenarios()[2];
    run_oracle_differential(name, stream);
}

// ======================================================================
// 2. Thread-count differentials over the arena accounting: the
//    release/record/reclaim protocol must be deterministic under any
//    thread count, per-point or batched.
// ======================================================================

fn variants(threads: usize) -> Vec<(&'static str, WindowEngine<Euclidean>)> {
    let base = || {
        EngineBuilder::new()
            .window_size(WINDOW)
            .capacities(CAPS.to_vec())
            .beta(2.0)
            .delta(1.0)
            .threads(threads)
    };
    vec![
        (
            "fixed",
            base().fixed(DMIN, DMAX).build(Euclidean).expect("valid"),
        ),
        (
            "oblivious",
            base().oblivious().build(Euclidean).expect("valid"),
        ),
        (
            "compact",
            base().compact(DMIN, DMAX).build(Euclidean).expect("valid"),
        ),
        (
            "robust",
            base()
                .robust(2, DMIN, DMAX)
                .build(Euclidean)
                .expect("valid"),
        ),
        (
            "matroid",
            base()
                .matroid(
                    PartitionMatroid::new(CAPS.to_vec()).expect("valid caps"),
                    DMIN,
                    DMAX,
                )
                .build(Euclidean)
                .expect("valid"),
        ),
    ]
}

fn assert_arena_agrees(ctx: &str, a: &MemoryStats, b: &MemoryStats) {
    assert_eq!(a.stored_points(), b.stored_points(), "{ctx}: entries");
    assert_eq!(a.unique_points, b.unique_points, "{ctx}: arena payloads");
    assert_eq!(a.payload_bytes, b.payload_bytes, "{ctx}: arena bytes");
    assert_eq!(a.handle_bytes(), b.handle_bytes(), "{ctx}: handle bytes");
}

#[test]
fn arena_accounting_is_identical_across_thread_counts() {
    for (scenario, stream) in scenarios() {
        let mut pairs: Vec<_> = variants(1)
            .into_iter()
            .zip(variants(4))
            .map(|((name, seq), (_, par))| (name, seq, par))
            .collect();
        for p in &stream {
            for (name, seq, par) in &mut pairs {
                seq.insert(p.clone());
                par.insert(p.clone());
                let _ = name;
            }
        }
        for (name, seq, par) in &pairs {
            let ctx = format!("{name}/{scenario}/per-point");
            assert_arena_agrees(&ctx, &seq.memory_stats(), &par.memory_stats());
        }
    }
}

#[test]
fn arena_accounting_is_identical_for_batched_inserts() {
    for (scenario, stream) in scenarios() {
        let mut pairs: Vec<_> = variants(1)
            .into_iter()
            .zip(variants(4))
            .map(|((name, seq), (_, par))| (name, seq, par))
            .collect();
        for chunk in stream.chunks(17) {
            for (_, seq, par) in &mut pairs {
                seq.insert_batch(chunk.iter().cloned());
                par.insert_batch(chunk.iter().cloned());
            }
        }
        for (name, seq, par) in &pairs {
            let ctx = format!("{name}/{scenario}/batched");
            assert_arena_agrees(&ctx, &seq.memory_stats(), &par.memory_stats());
            // Batched and per-point lanes both drain the dead lists
            // fully: nothing may still be pending.
            assert!(
                seq.memory_stats().unique_points <= seq.stored_points().max(1),
                "{ctx}: arena holds more payloads than entries reference"
            );
        }
    }
}

// ======================================================================
// 3. Byte-level memory bounds and snapshot roundtrip — the acceptance
//    criteria of the interning refactor.
// ======================================================================

/// For a window of W points under G guesses, resident payloads are
/// O(coreset sizes): never more payloads than handle entries, never more
/// than W, and several-fold fewer than the pre-refactor per-entry copies
/// on a multi-guess workload.
#[test]
fn payloads_are_coreset_bounded_not_guesses_times_window() {
    let window = 300usize;
    let cfg = FairSWConfig::builder()
        .window_size(window)
        .capacities(vec![2, 2])
        .beta(2.0)
        .delta(1.0)
        .build()
        .expect("valid");
    let mut sw = FairSlidingWindow::new(cfg, Euclidean, 1e-3, 1e4).expect("valid");
    for i in 0..3 * window as u64 {
        let x = (i as f64 * 0.618_033_988_7).fract() * 1000.0 + i as f64 * 0.1;
        sw.insert(cp(x, (i % 2) as u32));
    }
    sw.check_invariants().expect("invariants");
    let stats = sw.memory_stats();
    let entries = stats.stored_points();
    let g = stats.num_guesses();
    assert!(g >= 10, "workload must materialize many guesses, got {g}");

    // (a) Dedup invariant: every payload is referenced by ≥ 1 entry.
    assert!(stats.unique_points <= entries);
    // (b) Epoch bound: the arena never outlives the window.
    assert!(stats.unique_points <= window);
    // (c) The pre-refactor footprint was one payload per entry; the
    //     arena must cut resident copies several-fold on this workload.
    assert!(
        entries >= 3 * stats.unique_points,
        "copy reduction too small: {entries} entries vs {} payloads",
        stats.unique_points
    );
    // (d) Byte-level: payload bytes correspond to unique points priced
    //     at the actual per-point footprint, and handles are 8 bytes per
    //     entry — the arena's bytes must undercut pricing every entry as
    //     an owned copy.
    let per_point = EuclidPoint::new(vec![0.0]).payload_bytes();
    assert_eq!(stats.payload_bytes, stats.unique_points * per_point);
    assert_eq!(
        stats.handle_bytes(),
        entries * fairsw::core::HANDLE_ENTRY_BYTES
    );
    let pre_refactor_bytes = entries * per_point;
    assert!(
        stats.resident_bytes() < pre_refactor_bytes,
        "arena bytes {} not below per-entry-copy bytes {pre_refactor_bytes}",
        stats.resident_bytes()
    );
}

/// Retiring guesses (the oblivious range adjustment) must return their
/// arena references: after the window collapses to a tight cluster the
/// payload count has to follow the coresets down, not accumulate.
#[test]
fn oblivious_retirement_does_not_leak_payloads() {
    let mut sw = ObliviousFairSlidingWindow::new(
        FairSWConfig::builder()
            .window_size(WINDOW)
            .capacities(CAPS.to_vec())
            .build()
            .expect("valid"),
        Euclidean,
    )
    .expect("valid");
    // Phase 1: wide scatter materializes a broad guess range.
    for i in 0..4 * WINDOW as u64 {
        sw.insert(cp(
            (i as f64 * 0.324_717_957_2).fract() * 1e3,
            (i % 2) as u32,
        ));
    }
    // Phase 2: tight cluster; high guesses retire, old payloads expire.
    for i in 0..4 * WINDOW as u64 {
        sw.insert(cp(500.0 + (i as f64 * 0.618).fract(), (i % 2) as u32));
    }
    sw.check_invariants().expect("invariants");
    let stats = sw.memory_stats();
    assert!(
        stats.unique_points <= WINDOW,
        "arena kept {} payloads for a {WINDOW}-point window",
        stats.unique_points
    );
    assert!(stats.unique_points <= stats.stored_points());
}

/// Snapshot → restore → continue must carry the arena through the wire:
/// identical answers and identical deduplicated footprint, including
/// after further batched arrivals on both sides.
#[test]
fn snapshot_roundtrips_through_the_store() {
    let cfg = FairSWConfig::builder()
        .window_size(WINDOW)
        .capacities(CAPS.to_vec())
        .beta(2.0)
        .delta(1.0)
        .build()
        .expect("valid");
    let (_, stream) = &scenarios()[1]; // slide (spikes included)
    let (head, tail) = stream.split_at(stream.len() / 2);
    let mut original = FairSlidingWindow::new(cfg, Euclidean, DMIN, DMAX).expect("valid");
    for p in head {
        original.insert(p.clone());
    }
    let bytes = original.snapshot();
    let mut restored = FairSlidingWindow::restore(Euclidean, &bytes).expect("restores");
    assert_arena_agrees(
        "snapshot/at-restore",
        &original.memory_stats(),
        &restored.memory_stats(),
    );
    // Continue both — one per-point, one batched — and stay identical.
    for p in tail {
        original.insert(p.clone());
    }
    for chunk in tail.chunks(13) {
        restored.insert_batch(chunk.iter().cloned());
    }
    assert_arena_agrees(
        "snapshot/after-continue",
        &original.memory_stats(),
        &restored.memory_stats(),
    );
    let (a, b) = (
        original.query().expect("answers"),
        restored.query().expect("answers"),
    );
    assert_eq!(a.guess.to_bits(), b.guess.to_bits());
    assert_eq!(a.coreset_size, b.coreset_size);
    assert_eq!(a.coreset_radius.to_bits(), b.coreset_radius.to_bits());
    for (x, y) in a.centers.iter().zip(&b.centers) {
        assert_eq!(x.color, y.color);
        assert_eq!(x.point.coords(), y.point.coords());
    }
}

//! Integration: solution quality of the streaming algorithms against the
//! sequential baselines run on the exact window — the paper's
//! approximation-ratio experiment in miniature.

use fairsw::prelude::*;
use fairsw_datasets::{color_frequencies, higgs_like, phones_like, proportional_capacities};
use fairsw_metric::sampled_extremes;

struct Setup {
    ds: fairsw_datasets::Dataset,
    caps: Vec<usize>,
    dmin: f64,
    dmax: f64,
}

fn setup(ds: fairsw_datasets::Dataset) -> Setup {
    let caps = proportional_capacities(&color_frequencies(&ds.points, ds.num_colors), 14);
    let raw: Vec<EuclidPoint> = ds.points.iter().map(|p| p.point.clone()).collect();
    let ext = sampled_extremes(&Euclidean, &raw, 200).expect("non-degenerate");
    Setup {
        ds,
        caps,
        dmin: ext.dmin,
        dmax: ext.dmax,
    }
}

/// Streams through `Ours`, queries at several times, and asserts the
/// radius over the true window stays within `bound` × the Jones baseline.
fn quality_run(s: &Setup, delta: f64, window: usize, bound: f64) {
    let cfg = FairSWConfig::builder()
        .window_size(window)
        .capacities(s.caps.clone())
        .beta(2.0)
        .delta(delta)
        .build()
        .expect("valid");
    let mut sw = FairSlidingWindow::new(cfg, Euclidean, s.dmin, s.dmax).expect("valid");
    let mut exact = ExactWindow::new(window);

    let len = s.ds.points.len();
    let query_at: Vec<usize> = vec![window + (len - window) / 3, len - 1];
    for (i, p) in s.ds.points.iter().enumerate() {
        sw.insert(p.clone());
        exact.push(p.clone());
        if query_at.contains(&i) {
            let win = exact.to_vec();
            let inst = Instance::new(&Euclidean, &win, &s.caps);
            let sol = sw.query().expect("query succeeds");
            assert!(inst.is_fair(&sol.centers), "unfair streaming solution");
            let streaming_radius = inst.radius_of(&sol.centers);
            let baseline = Jones.solve(&inst).expect("baseline succeeds");
            assert!(
                streaming_radius <= bound * baseline.radius + 1e-9,
                "t={}: streaming {} vs baseline {} (δ={delta})",
                i + 1,
                streaming_radius,
                baseline.radius
            );
        }
    }
}

#[test]
fn phones_quality_fine_delta() {
    let s = setup(phones_like(3_000, 11));
    // Theory: (3+ε) vs the 3-approx baseline; the paper observes ratios
    // near 1 at small δ. We assert a conservative 2.5×.
    quality_run(&s, 0.5, 800, 2.5);
}

#[test]
fn phones_quality_coarse_delta() {
    let s = setup(phones_like(3_000, 12));
    // δ = 4: paper reports within 2× of baselines; allow 3× slack for the
    // small window.
    quality_run(&s, 4.0, 800, 3.0);
}

#[test]
fn higgs_quality() {
    let s = setup(higgs_like(2_500, 13));
    quality_run(&s, 1.0, 600, 2.5);
}

#[test]
fn oblivious_matches_ours_quality() {
    let s = setup(phones_like(3_000, 14));
    let window = 700usize;
    let mk = |delta: f64| {
        FairSWConfig::builder()
            .window_size(window)
            .capacities(s.caps.clone())
            .beta(2.0)
            .delta(delta)
            .build()
            .expect("valid")
    };
    let mut ours = FairSlidingWindow::new(mk(1.0), Euclidean, s.dmin, s.dmax).expect("valid");
    let mut obl = ObliviousFairSlidingWindow::new(mk(1.0), Euclidean).expect("valid");
    let mut exact = ExactWindow::new(window);
    for p in &s.ds.points {
        ours.insert(p.clone());
        obl.insert(p.clone());
        exact.push(p.clone());
    }
    let win = exact.to_vec();
    let inst = Instance::new(&Euclidean, &win, &s.caps);
    let r_ours = inst.radius_of(&ours.query().expect("ok").centers);
    let r_obl = inst.radius_of(&obl.query().expect("ok").centers);
    // The paper finds the two variants of comparable quality.
    assert!(
        r_obl <= 2.0 * r_ours + 1e-9 && r_ours <= 2.0 * r_obl + 1e-9,
        "divergent quality: ours {r_ours} vs oblivious {r_obl}"
    );
}

#[test]
fn compact_variant_quality_band() {
    let s = setup(phones_like(2_500, 15));
    let window = 600usize;
    let cfg = FairSWConfig::builder()
        .window_size(window)
        .capacities(s.caps.clone())
        .beta(2.0)
        .build()
        .expect("valid");
    let mut sw = CompactFairSlidingWindow::new(cfg, Euclidean, s.dmin, s.dmax).expect("valid");
    let mut exact = ExactWindow::new(window);
    for p in &s.ds.points {
        sw.insert(p.clone());
        exact.push(p.clone());
    }
    let win = exact.to_vec();
    let inst = Instance::new(&Euclidean, &win, &s.caps);
    let sol = sw.query().expect("ok");
    assert!(inst.is_fair(&sol.centers));
    let r = inst.radius_of(&sol.centers);
    let baseline = Jones.solve(&inst).expect("ok").radius;
    // Corollary 2's guarantee is 31+O(ε); in practice the paper observes
    // (δ=4 regime) within ~2× of the baselines. Assert the *guarantee*
    // band, and record the practical band in EXPERIMENTS.md.
    assert!(
        r <= 31.0 * baseline + 1e-9,
        "compact radius {r} vs baseline {baseline}"
    );
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the benchmark-definition surface the workspace uses
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`) backed by a simple wall-clock loop: each benchmark is
//! warmed up briefly, then timed over enough iterations to fill a small
//! measurement budget, and the mean per-iteration time is printed. No
//! statistics, plots or baselines — `cargo bench` output is meant for
//! quick relative comparisons only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Label of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` label.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// A label that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    /// Measurement budget for the timed phase.
    budget: Duration,
    /// Measured mean per-iteration time (read by the harness).
    mean: Duration,
}

impl Bencher {
    /// Times `routine` and records the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (also forces lazy setup).
        std::hint::black_box(routine());
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget && iters >= 5 {
                break;
            }
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes runs by wall-clock
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            budget: Duration::from_millis(200),
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!("{}/{:<28} {:>12.3?}/iter", self.name, id, b.mean);
    }

    /// Benchmarks a closure under a plain name.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        self.run(id.id, f);
    }

    /// Benchmarks a closure that receives an input parameter.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.id, |b| f(b, input));
    }

    /// Ends the group (no-op; matches upstream's API).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name}");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            budget: Duration::from_millis(200),
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!("{name:<32} {:>12.3?}/iter", b.mean);
        self
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the surface the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples and [`strategy::Just`];
//! * [`collection::vec`] with exact or ranged lengths;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`test_runner::TestCaseError`] and
//!   [`test_runner::Config`] (`ProptestConfig`).
//!
//! Semantics match upstream where it matters for these tests — each
//! `#[test]` runs `cases` random instantiations of its strategies and
//! fails on the first counterexample — with one deliberate omission:
//! **no shrinking**. A failing case reports the panic/assertion message
//! but not a minimized input. Sampling is deterministic per test name,
//! so failures reproduce across runs.

pub mod strategy {
    use super::test_runner::TestRng;

    /// A value generator: the sampling half of proptest's Strategy.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a dependent strategy from each generated value (e.g.
        /// pick a dimension, then points of that dimension).
        fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// The result of [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_below(self.options.len());
            self.options[i].sample(rng)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, i32, i64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::Range;

    /// Admissible lengths for [`vec()`]: an exact count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Generates `Vec`s of values drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + if span > 1 { rng.usize_below(span) } else { 0 };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (`ProptestConfig` upstream).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Fails the current case with a reason.
        pub fn fail<S: Into<String>>(reason: S) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// The deterministic sampling RNG (SplitMix64, seeded per test).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a), so every test
        /// gets a distinct but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index below `n` (`n > 0`).
        pub fn usize_below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// One-stop imports mirroring upstream's prelude.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests: each `#[test]` samples its strategies
/// `cases` times and fails on the first counterexample (no shrinking).
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Uniformly picks one of several same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(::std::boxed::Box::new($strat) as _),+])
    };
}

/// Asserts inside a property body, failing the case (not panicking the
/// harness) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {} ({:?} vs {:?})",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let x = (1.5..2.5f64).sample(&mut rng);
            assert!((1.5..2.5).contains(&x));
            let n = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn vec_lengths_respect_size() {
        let mut rng = TestRng::for_test("lens");
        for _ in 0..200 {
            let v = collection::vec(0u32..5, 2..6).sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            let w = collection::vec(0u32..5, 4).sample(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = prop_oneof![0.0..1.0f64, 10.0..11.0f64].prop_map(|x| x * 2.0);
        for _ in 0..100 {
            let x = s.sample(&mut rng);
            assert!((0.0..2.0).contains(&x) || (20.0..22.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0u8..10, v in collection::vec(0i32..100, 1..5)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(!v.is_empty(), "vec empty: {v:?}");
        }
    }
}
